// Package atomicsafe enforces the two atomicity conventions the repo
// relies on for its sharded counters and padded atomic blocks:
//
//  1. all-or-nothing atomics: a variable whose address is passed to a
//     sync/atomic package function anywhere in the package must be
//     accessed through sync/atomic everywhere — one plain read or
//     write next to atomic.AddInt64 is a data race the race detector
//     only catches if the schedule cooperates. (Typed atomics —
//     atomic.Int64 and friends — make mixed access unrepresentable
//     and are the preferred fix.)
//
//  2. no copying lock-bearing values: a value whose type transitively
//     contains a sync primitive or a typed atomic must not be copied
//     — by assignment from an existing value, by passing or returning
//     by value, by a range clause, or by a value receiver. The copy
//     forks the lock/counter state; both halves silently diverge.
//
// Construction is not copying: composite literals and call results
// assigned to a fresh variable are allowed.
package atomicsafe

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"example.com/scar/tools/internal/lint/analysis"
)

// Analyzer reports mixed atomic/plain access and by-value copies of
// atomic- or lock-bearing structs.
var Analyzer = &analysis.Analyzer{
	Name: "atomicsafe",
	Doc:  "variables accessed with sync/atomic must be accessed atomically everywhere; structs containing atomics/mutexes must never be copied by value",
	Run:  run,
}

// nocopyNames are the sync and sync/atomic types that must never be
// copied once placed.
var nocopyNames = map[string]bool{
	"sync.Mutex": true, "sync.RWMutex": true, "sync.WaitGroup": true,
	"sync.Cond": true, "sync.Once": true, "sync.Pool": true, "sync.Map": true,
	"sync/atomic.Bool": true, "sync/atomic.Int32": true, "sync/atomic.Int64": true,
	"sync/atomic.Uint32": true, "sync/atomic.Uint64": true, "sync/atomic.Uintptr": true,
	"sync/atomic.Pointer": true, "sync/atomic.Value": true,
}

func run(pass *analysis.Pass) error {
	checkMixedAccess(pass)
	checkCopies(pass)
	return nil
}

// checkMixedAccess implements rule 1.
func checkMixedAccess(pass *analysis.Pass) {
	type span struct{ start, end token.Pos }
	var (
		sites    = make(map[*types.Var][]token.Pos) // var -> atomic access sites
		addrArgs []span                             // &x subtrees passed to sync/atomic
	)
	for _, f := range pass.Files {
		if testFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // typed-atomic methods cannot be mixed with plain access
			}
			addr := call.Args[0]
			addrArgs = append(addrArgs, span{addr.Pos(), addr.End()})
			if v := addrVar(pass.TypesInfo, addr); v != nil {
				sites[v] = append(sites[v], call.Pos())
			}
			return true
		})
	}
	if len(sites) == 0 {
		return
	}
	for _, ps := range sites {
		sort.Slice(ps, func(i, j int) bool { return ps[i] < ps[j] })
	}
	inAtomicArg := func(pos token.Pos) bool {
		for _, s := range addrArgs {
			if pos >= s.start && pos < s.end {
				return true
			}
		}
		return false
	}
	for _, f := range pass.Files {
		if testFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			v, ok := pass.TypesInfo.Uses[id].(*types.Var)
			if !ok {
				return true
			}
			ps, tracked := sites[v]
			if !tracked || inAtomicArg(id.Pos()) {
				return true
			}
			ref := pass.Fset.Position(ps[0])
			pass.Reportf(id.Pos(), "plain access to %s races with its sync/atomic access at %s:%d; use sync/atomic everywhere (or a typed atomic)",
				id.Name, base(ref.Filename), ref.Line)
			return true
		})
	}
}

// checkCopies implements rule 2.
func checkCopies(pass *analysis.Pass) {
	display := func(t types.Type) string {
		return types.TypeString(t, types.RelativeTo(pass.Pkg))
	}
	for _, f := range pass.Files {
		if testFile(pass.Fset, f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Recv != nil && len(n.Recv.List) == 1 {
					rt := n.Recv.List[0].Type
					if _, isPtr := rt.(*ast.StarExpr); !isPtr {
						if tv, ok := pass.TypesInfo.Types[rt]; ok && tv.Type != nil {
							if inner, bad := nocopy(tv.Type, nil); bad {
								pass.Reportf(rt.Pos(), "value receiver copies %s (contains %s) on every call; use a pointer receiver",
									display(tv.Type), inner)
							}
						}
					}
				}
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i, rhs := range n.Rhs {
						// Assigning to _ retains nothing; the idiom
						// is not a diverging copy.
						if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
							continue
						}
						reportCopy(pass, rhs, "assignment copies", display)
					}
				}
			case *ast.CallExpr:
				if tv, ok := pass.TypesInfo.Types[n.Fun]; ok && tv.IsType() {
					return true // conversion, not a call
				}
				for _, arg := range n.Args {
					reportCopy(pass, arg, "call passes by value", display)
				}
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					reportCopy(pass, res, "return copies", display)
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if t := typeOfExpr(pass.TypesInfo, n.Value); t != nil {
						if inner, bad := nocopy(t, nil); bad {
							pass.Reportf(n.Value.Pos(), "range clause copies %s (contains %s); iterate by index or over pointers",
								display(t), inner)
						}
					}
				}
			}
			return true
		})
	}
}

// reportCopy flags expr when it reads an existing nocopy value by
// value. Fresh construction (composite literals, call results) is
// allowed.
func reportCopy(pass *analysis.Pass, expr ast.Expr, what string, display func(types.Type) string) {
	switch ast.Unparen(expr).(type) {
	case *ast.CompositeLit, *ast.CallExpr, *ast.FuncLit:
		return
	}
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	if inner, bad := nocopy(tv.Type, nil); bad {
		pass.Reportf(expr.Pos(), "%s %s (contains %s); pass a pointer instead", what, display(tv.Type), inner)
	}
}

// nocopy reports whether t transitively contains a sync primitive or
// typed atomic, naming the first one found.
func nocopy(t types.Type, seen map[types.Type]bool) (string, bool) {
	if seen[t] {
		return "", false
	}
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok && named.Obj().Pkg() != nil {
		key := named.Obj().Pkg().Path() + "." + named.Obj().Name()
		if nocopyNames[key] {
			return key, true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if inner, bad := nocopy(u.Field(i).Type(), seen); bad {
				return inner, true
			}
		}
	case *types.Array:
		return nocopy(u.Elem(), seen)
	}
	return "", false
}

func typeOfExpr(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := info.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// addrVar resolves the variable whose address &x takes, or nil.
func addrVar(info *types.Info, arg ast.Expr) *types.Var {
	u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil
	}
	switch e := ast.Unparen(u.X).(type) {
	case *ast.Ident:
		v, _ := info.Uses[e].(*types.Var)
		return v
	case *ast.SelectorExpr:
		v, _ := info.Uses[e.Sel].(*types.Var)
		return v
	}
	return nil
}

func calleeFunc(info *types.Info, n *ast.CallExpr) *types.Func {
	switch e := ast.Unparen(n.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[e].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[e.Sel].(*types.Func)
		return fn
	}
	return nil
}

func base(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

func testFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Package).Filename, "_test.go")
}
