// Package analysis is a stdlib-only subset of the
// golang.org/x/tools/go/analysis vocabulary: an Analyzer inspects one
// type-checked package through a Pass and reports Diagnostics.
//
// The container this repo builds in has no module proxy access, so the
// real x/tools framework cannot be vendored; this package mirrors its
// shape (Analyzer.Run(*Pass), Pass.Reportf, Diagnostic.Pos/Message) so
// the scarlint analyzers can migrate mechanically if x/tools ever
// lands in the build image. Only the subset scarlint needs exists —
// no Facts, no Requires graph, no SuggestedFixes.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// PkgInfo is one loaded, type-checked package. The lint package's
// Package type aliases it; it lives here so Pass can carry the whole
// module's packages without an import cycle.
type PkgInfo struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
}

// Analyzer describes one named check.
type Analyzer struct {
	// Name identifies the analyzer in output. It must be a valid Go
	// identifier.
	Name string
	// SuppressKey is the keyword of this analyzer's suppression
	// comment, `//scar:<key> <reason>`; empty means Name. (nodeterm's
	// is "nondeterm" — the comment names the property being excused,
	// not the analyzer.)
	SuppressKey string
	// Doc is the analyzer's one-paragraph contract, shown by
	// `scarlint -help`.
	Doc string
	// Run applies the check to one package. It reports findings
	// through pass.Report and returns an error only for internal
	// failures (a failed run aborts scarlint, it does not silently
	// pass the package).
	Run func(*Pass) error
}

// Pass is the interface between one Analyzer and one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	// All is every module package loaded in this run, the analyzed
	// package included, for interprocedural analyses (hotalloc's
	// module call graph). Under analysistest it holds only the
	// package under test. All packages share Fset.
	All []*PkgInfo

	// Escapes carries compiler escape-analysis facts for the analyzed
	// module, or nil when unavailable (golden-corpus runs); analyzers
	// that use it must degrade to their AST-level checks when nil.
	Escapes *EscapeFacts
}

// HeapSite is one compiler diagnostic proving a heap allocation.
type HeapSite struct {
	Line    int
	Col     int
	Message string // e.g. "make([]Segment, len(segs)) escapes to heap"
}

// EscapeFacts indexes `go build -gcflags=-m=2` heap diagnostics by
// absolute source path. The gc toolchain replays cached compile
// diagnostics, so facts are complete even on a warm build cache.
type EscapeFacts struct {
	Sites map[string][]HeapSite // abs file path -> sites sorted by line, col
}

// Range returns the heap sites in file between startLine and endLine
// inclusive. file must be absolute (as token.Position.Filename is for
// loader-loaded packages).
func (e *EscapeFacts) Range(file string, startLine, endLine int) []HeapSite {
	var out []HeapSite
	for _, s := range e.Sites[file] {
		if s.Line >= startLine && s.Line <= endLine {
			out = append(out, s)
		}
	}
	return out
}

// Reportf reports a diagnostic at pos with a formatted message.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// PkgNameOf resolves expr to the *types.PkgName it names, or nil when
// expr is not a package qualifier (for recognizing `time.Now` as the
// package time even when the file renames the import, and for NOT
// matching a local variable that happens to be called `time`).
func (p *Pass) PkgNameOf(expr ast.Expr) *types.PkgName {
	id, ok := expr.(*ast.Ident)
	if !ok {
		return nil
	}
	pn, _ := p.TypesInfo.Uses[id].(*types.PkgName)
	return pn
}

// IsPkgFunc reports whether sel is a reference to the package-level
// function (or variable) path.name, resolved through the type
// information so import renames and shadowing are handled.
func (p *Pass) IsPkgFunc(sel *ast.SelectorExpr, path, name string) bool {
	pn := p.PkgNameOf(sel.X)
	return pn != nil && pn.Imported().Path() == path && sel.Sel.Name == name
}
