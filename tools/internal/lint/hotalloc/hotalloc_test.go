package hotalloc_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"

	"example.com/scar/tools/internal/lint"
	"example.com/scar/tools/internal/lint/analysis"
	"example.com/scar/tools/internal/lint/analysistest"
	"example.com/scar/tools/internal/lint/hotalloc"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, "testdata", hotalloc.Analyzer, "internal/hot")
}

// TestEscapeFacts checks the compiler-fact layer: a heap site inside
// an annotated body is a finding positioned at the site, one outside
// is ignored.
func TestEscapeFacts(t *testing.T) {
	const src = `package p

//scar:hotpath compiler facts land here
func hot(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

func cold() *int {
	x := 41
	return &x
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Uses:  make(map[*ast.Ident]types.Object),
		Defs:  make(map[*ast.Ident]types.Object),
	}
	tpkg, err := new(types.Config).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	pkg := &lint.Package{Fset: fset, Files: []*ast.File{f}, Pkg: tpkg, TypesInfo: info}

	ctx := &lint.Context{
		All: []*lint.Package{pkg},
		Escapes: &analysis.EscapeFacts{Sites: map[string][]analysis.HeapSite{
			"p.go": {
				{Line: 5, Col: 2, Message: "moved to heap: total"}, // inside hot
				{Line: 13, Col: 2, Message: "moved to heap: x"},    // inside cold: ignored
			},
		}},
	}
	findings, err := lint.CheckWith(ctx, pkg, []*analysis.Analyzer{hotalloc.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want exactly the hot-body heap site: %v", len(findings), findings)
	}
	got := findings[0]
	if got.Pos.Line != 5 || !strings.Contains(got.Message, "moved to heap: total") {
		t.Errorf("finding = %v, want compiler heap site at line 5", got)
	}
}
