// Corpus for the hotalloc analyzer: //scar:hotpath functions must be
// allocation-free. Un-annotated functions may allocate freely; hot
// ones are checked for intrinsic allocations, boxing, capturing
// closures, denylisted stdlib calls, and calls into non-hotpath
// module functions that may allocate (transitively).
package hot

import (
	"fmt"
	"strings"
	"sync"
)

type item struct{ k, v int }

type table struct {
	mu      sync.Mutex
	m       map[string]*item
	scratch []int
	pool    sync.Pool
}

// lookup is the model hot read path: lock, map read, unlock. Nothing
// here allocates, so nothing is reported.
//
//scar:hotpath shard-cache style lookup, pinned at 0 allocs/op
func (t *table) lookup(k string) *item {
	t.mu.Lock()
	it := t.m[k]
	t.mu.Unlock()
	return it
}

// cold allocates freely — no annotation, no findings.
func cold() []int {
	return make([]int, 8)
}

//scar:hotpath exercises every intrinsic allocation finding
func (t *table) dirty(k string, xs []int) int {
	p := &item{}                     // want "&composite literal allocates"
	s := make([]int, 4)              // want "make allocates"
	n := new(item)                   // want "new allocates"
	t.scratch = append(t.scratch, 1) // want "append may allocate"
	t.m[k] = nil                     // want "map write may allocate"
	go func() {}()                   // want "go statement starts a heap-allocated goroutine"
	cat := k + "!"                   // want "string concatenation allocates"
	raw := []byte(k)                 // want `string to \[\]byte/\[\]rune conversion allocates`
	lit := []int{1, 2, 3}            // want "slice/map composite literal allocates"
	box := any(xs)                   // want "conversion to interface allocates"
	_, _, _ = p, n, box
	return s[0] + len(cat) + len(raw) + lit[0]
}

//scar:hotpath closures that capture allocate; static ones do not
func closures(x int) func() int {
	inc := func(a int) int { return a + 1 } // static: no finding
	bad := func() int { return x }          // want "closure captures x and allocates"
	_ = inc
	return bad
}

func cleanHelper(a, b int) int { return a + b }

func allocHelper() []int { return make([]int, 8) }

func transitively() int { return len(allocHelper()) }

//scar:hotpath hot callees are gated at their own declaration
func hotHelper(a int) int { return a * 2 }

//scar:hotpath calls are checked against the module call graph
func caller(a int) int {
	a = cleanHelper(a, a)   // allocation-free helper: no finding
	a += hotHelper(a)       // hot callee: gated there, no finding
	a += len(allocHelper()) // want "calls allocHelper, which may allocate"
	a += transitively()     // want "calls transitively, which may allocate"
	return a
}

//scar:hotpath function values defeat the call graph
func viaValue(f func() int) int {
	return f() // want "call through a function value cannot be proven allocation-free"
}

//scar:hotpath growing-buffer methods are denylisted
func build(b *strings.Builder, s string) {
	b.WriteString(s) // want `strings\.Builder\.WriteString allocates`
}

//scar:hotpath fmt both allocates and boxes its arguments
func report(k string) string {
	return fmt.Sprintln(k) // want `fmt\.Sprintln allocates` "argument boxed into interface allocates"
}

//scar:hotpath Pool.Get may invoke New; only the runtime pin proves hits
func fromPool(t *table) any {
	return t.pool.Get() // want `sync\.Pool\.Get allocates`
}

// missPath shows the suppression convention: the documented cold miss
// path is excused with a reason; the trailing comment also covers the
// insert on the next line (the line-above rule), and the hot hit path
// above it stays gated.
//
//scar:hotpath hit path returns the cached entry without allocating
func (t *table) missPath(k string) *item {
	if it := t.m[k]; it != nil {
		return it
	}
	it := &item{} //scar:hotalloc miss path: constructs and inserts the entry exactly once per key
	t.m[k] = it
	return it
}

func notADoc() {
	//scar:hotpath inside a body gates nothing // want "must be in the doc comment of the function it annotates"
}
