// Package hotalloc enforces the //scar:hotpath annotation: a function
// whose doc comment carries it is a zero-allocation region.
//
// Inside an annotated body, every construct that allocates — or that
// static analysis cannot prove allocation-free — is a finding:
//
//   - intrinsic allocations: make, new, &T{}, slice/map composite
//     literals, append, map writes, go statements, non-constant string
//     concatenation, string<->[]byte/[]rune conversions
//   - boxing: explicit conversion of a concrete non-pointer-shaped
//     value to an interface, or passing one to an interface parameter
//     (pointers, chans, maps and funcs are pointer-shaped and store
//     into an interface without allocating)
//   - closures that capture variables (non-capturing func literals
//     compile to static closures and are free)
//   - calls: a call into a non-hotpath module function that may
//     allocate (computed transitively over the module call graph from
//     Pass.All), a denylisted always-allocating stdlib helper (fmt,
//     errors, sort's interface-based sorts, growing buffer methods,
//     sync.Pool.Get), or a call through a function value, which the
//     call graph cannot see
//
// When scarlint supplies compiler escape facts (Pass.Escapes, from
// `go build -gcflags=-m=2`), every "escapes to heap" / "moved to
// heap" site inside an annotated body is reported too, so the AST
// gate and the compiler's escape analysis cross-check each other.
// Annotated callees of annotated functions are trusted — they are
// gated at their own declaration.
//
// Genuine cold-path exceptions (a miss path that constructs the cache
// entry, an invariant-violation panic) carry //scar:hotalloc
// suppressions with reasons, like any other analyzer.
package hotalloc

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"example.com/scar/tools/internal/lint/analysis"
)

// Analyzer rejects allocations inside //scar:hotpath functions.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "//scar:hotpath functions must be allocation-free: no heap allocations, boxing, capturing closures, or calls into allocating non-hotpath code",
	Run:  run,
}

// annotation marks a hot-path function when it appears in the
// function's doc comment, optionally followed by a reason.
const annotation = "//scar:hotpath"

func isAnnotation(text string) bool {
	return text == annotation || strings.HasPrefix(text, annotation+" ")
}

// The stdlib denylist: helpers that allocate by contract. The rest of
// the standard library is trusted at the AST layer — the compiler
// escape facts catch what the denylist misses when scarlint runs.
var denyPkg = map[string]bool{
	"fmt":    true,
	"errors": true,
}

var denyFunc = map[string]bool{
	"sort.Sort":           true,
	"sort.Stable":         true,
	"sort.Slice":          true,
	"sort.SliceStable":    true,
	"strings.Join":        true,
	"strings.Repeat":      true,
	"strings.Split":       true,
	"strings.Fields":      true,
	"strings.ToUpper":     true,
	"strings.ToLower":     true,
	"strconv.Itoa":        true,
	"strconv.FormatInt":   true,
	"strconv.FormatFloat": true,
	"strconv.Quote":       true,
}

// denyRecv rejects every method on stdlib types whose point is to
// grow a heap buffer.
var denyRecv = map[string]bool{
	"strings.Builder": true,
	"bytes.Buffer":    true,
}

// summary is one module function's allocation behavior, keyed by
// types.Func.FullName so identities survive the source/export-data
// universe split between separately type-checked packages.
type summary struct {
	hot       bool
	allocates bool            // direct allocation, or conservative (dynamic/denylisted call)
	calls     map[string]bool // module callees by FullName
}

func run(pass *analysis.Pass) error {
	// The module is whatever this run loaded; a callee outside it is
	// stdlib (trusted modulo the denylist) or unknown (a finding).
	module := make(map[string]bool, len(pass.All))
	for _, p := range pass.All {
		module[p.Pkg.Path()] = true
	}
	sums := moduleSummaries(pass, module)

	// Propagate may-allocate through the module call graph to a
	// fixpoint. Hot functions are treated as allocation-free here:
	// they are gated at their own declaration, so a hot->hot call is
	// not a finding even when the callee carries suppressed
	// exceptions.
	for changed := true; changed; {
		changed = false
		for _, s := range sums {
			if s.allocates || s.hot {
				continue
			}
			for callee := range s.calls {
				cs, ok := sums[callee]
				if !ok || (!cs.hot && cs.allocates) {
					s.allocates = true
					changed = true
					break
				}
			}
		}
	}

	for _, f := range pass.Files {
		if testFile(pass.Fset, f) {
			continue
		}
		docs := make(map[*ast.Comment]bool)
		for _, decl := range f.Decls {
			d, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if d.Doc != nil {
				for _, c := range d.Doc.List {
					if isAnnotation(c.Text) {
						docs[c] = true
					}
				}
			}
			if !isHot(d) || d.Body == nil {
				continue
			}
			walkBody(pass.TypesInfo, d.Body,
				func(pos token.Pos, msg string) { pass.Reportf(pos, "hot path: %s", msg) },
				func(fn *types.Func, pos token.Pos) { checkCallee(pass, module, sums, fn, pos) },
				func(pos token.Pos) {
					pass.Reportf(pos, "hot path: call through a function value cannot be proven allocation-free")
				})
			reportEscapes(pass, d)
		}
		// An annotation anywhere but a function's doc comment
		// silently gates nothing; reject it like an unknown
		// suppression key.
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if isAnnotation(c.Text) && !docs[c] {
					pass.Reportf(c.Pos(), "//scar:hotpath must be in the doc comment of the function it annotates")
				}
			}
		}
	}
	return nil
}

// moduleSummaries builds allocation summaries for every function body
// in the loaded module view (Pass.All).
func moduleSummaries(pass *analysis.Pass, module map[string]bool) map[string]*summary {
	sums := make(map[string]*summary)
	for _, p := range pass.All {
		for _, f := range p.Files {
			if testFile(p.Fset, f) {
				continue
			}
			for _, decl := range f.Decls {
				d, ok := decl.(*ast.FuncDecl)
				if !ok || d.Body == nil {
					continue
				}
				fn, _ := p.TypesInfo.Defs[d.Name].(*types.Func)
				if fn == nil {
					continue
				}
				s := &summary{hot: isHot(d), calls: make(map[string]bool)}
				walkBody(p.TypesInfo, d.Body,
					func(token.Pos, string) { s.allocates = true },
					func(callee *types.Func, _ token.Pos) {
						if callee.Pkg() == nil {
							return
						}
						path := callee.Pkg().Path()
						switch {
						case module[path]:
							s.calls[callee.FullName()] = true
						case stdlibPath(path):
							if denied(callee) != "" {
								s.allocates = true
							}
						default:
							s.allocates = true // outside the loaded view: unknown
						}
					},
					func(token.Pos) { s.allocates = true })
				sums[fn.FullName()] = s
			}
		}
	}
	return sums
}

// checkCallee judges one resolved call from a hot body.
func checkCallee(pass *analysis.Pass, module map[string]bool, sums map[string]*summary, fn *types.Func, pos token.Pos) {
	if fn.Pkg() == nil {
		return // universe scope (error.Error); nothing there allocates
	}
	path := fn.Pkg().Path()
	if !module[path] {
		if stdlibPath(path) {
			if d := denied(fn); d != "" {
				pass.Reportf(pos, "hot path: %s allocates", d)
			}
			return
		}
		pass.Reportf(pos, "hot path: cannot prove %s allocation-free (package %s is outside this run's loaded view)", fn.Name(), path)
		return
	}
	s, ok := sums[fn.FullName()]
	switch {
	case !ok:
		pass.Reportf(pos, "hot path: cannot prove %s allocation-free (no analyzed body: interface or dynamic method)", fn.Name())
	case s.hot:
		// gated at its own declaration
	case s.allocates:
		pass.Reportf(pos, "hot path: calls %s, which may allocate; annotate it //scar:hotpath or hoist the allocation", fn.Name())
	}
}

// reportEscapes surfaces compiler-proven heap sites inside the
// annotated body when escape facts are available.
func reportEscapes(pass *analysis.Pass, d *ast.FuncDecl) {
	if pass.Escapes == nil {
		return
	}
	tf := pass.Fset.File(d.Pos())
	if tf == nil {
		return
	}
	start := pass.Fset.Position(d.Pos())
	end := pass.Fset.Position(d.End())
	for _, s := range pass.Escapes.Range(start.Filename, start.Line, end.Line) {
		if s.Line > tf.LineCount() {
			continue
		}
		pos := tf.LineStart(s.Line) + token.Pos(s.Col-1)
		pass.Reportf(pos, "hot path: compiler: %s", s.Message)
	}
}

// walkBody reports every intrinsic allocation construct via alloc and
// dispatches calls: resolved functions to call, calls through
// function values to dyn.
func walkBody(info *types.Info, body ast.Node, alloc func(token.Pos, string), call func(*types.Func, token.Pos), dyn func(token.Pos)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			alloc(n.Pos(), "go statement starts a heap-allocated goroutine")
		case *ast.FuncLit:
			if v := capturedVar(info, n); v != "" {
				alloc(n.Pos(), "closure captures "+v+" and allocates")
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[n]; ok && tv.Type != nil {
				switch tv.Type.Underlying().(type) {
				case *types.Slice, *types.Map:
					alloc(n.Pos(), "slice/map composite literal allocates")
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					alloc(n.Pos(), "&composite literal allocates")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD {
				if tv, ok := info.Types[n]; ok && tv.Value == nil && tv.Type != nil {
					if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
						alloc(n.Pos(), "string concatenation allocates")
					}
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if mapWrite(info, lhs) {
					alloc(lhs.Pos(), "map write may allocate (growth)")
				}
			}
		case *ast.IncDecStmt:
			if mapWrite(info, n.X) {
				alloc(n.Pos(), "map write may allocate (growth)")
			}
		case *ast.CallExpr:
			handleCall(info, n, alloc, call, dyn)
		}
		return true
	})
}

func mapWrite(info *types.Info, lhs ast.Expr) bool {
	ix, ok := lhs.(*ast.IndexExpr)
	if !ok {
		return false
	}
	tv, ok := info.Types[ix.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

func handleCall(info *types.Info, n *ast.CallExpr, alloc func(token.Pos, string), call func(*types.Func, token.Pos), dyn func(token.Pos)) {
	if tv, ok := info.Types[n.Fun]; ok && tv.IsType() {
		checkConversion(info, n, tv.Type, alloc)
		return
	}
	if _, ok := ast.Unparen(n.Fun).(*ast.FuncLit); ok {
		return // directly invoked literal: its body is walked in place
	}
	obj := calleeObject(info, n.Fun)
	if b, ok := obj.(*types.Builtin); ok {
		switch b.Name() {
		case "append":
			alloc(n.Pos(), "append may allocate (slice growth)")
		case "make":
			alloc(n.Pos(), "make allocates")
		case "new":
			alloc(n.Pos(), "new allocates")
		case "panic":
			if len(n.Args) == 1 {
				checkBoxed(info, n.Args[0], alloc)
			}
		}
		return
	}
	if fn, ok := obj.(*types.Func); ok {
		call(fn, n.Pos())
		checkArgs(info, n, alloc)
		return
	}
	if sigOf(info, n.Fun) != nil {
		dyn(n.Pos())
		checkArgs(info, n, alloc)
	}
}

func calleeObject(info *types.Info, fun ast.Expr) types.Object {
	switch e := ast.Unparen(fun).(type) {
	case *ast.Ident:
		return info.Uses[e]
	case *ast.SelectorExpr:
		return info.Uses[e.Sel]
	}
	return nil
}

func sigOf(info *types.Info, fun ast.Expr) *types.Signature {
	tv, ok := info.Types[fun]
	if !ok || tv.Type == nil {
		return nil
	}
	sig, _ := tv.Type.Underlying().(*types.Signature)
	return sig
}

// checkConversion flags the conversions that copy into fresh heap
// storage: boxing into an interface and string<->byte/rune slices.
func checkConversion(info *types.Info, n *ast.CallExpr, target types.Type, alloc func(token.Pos, string)) {
	if len(n.Args) != 1 {
		return
	}
	tv, ok := info.Types[n.Args[0]]
	if !ok || tv.Type == nil {
		return
	}
	src := tv.Type
	switch {
	case types.IsInterface(target):
		if boxes(src) {
			alloc(n.Pos(), "conversion to interface allocates")
		}
	case isString(target) && isByteOrRuneSlice(src):
		alloc(n.Pos(), "[]byte/[]rune to string conversion allocates")
	case isByteOrRuneSlice(target) && isString(src):
		alloc(n.Pos(), "string to []byte/[]rune conversion allocates")
	}
}

// checkArgs flags concrete values boxed into interface parameters of
// a call whose signature is statically known.
func checkArgs(info *types.Info, n *ast.CallExpr, alloc func(token.Pos, string)) {
	sig := sigOf(info, n.Fun)
	if sig == nil {
		return
	}
	params := sig.Params()
	if params.Len() == 0 {
		return
	}
	for i, arg := range n.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if n.Ellipsis != token.NoPos {
				continue // slice passed through whole; no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		checkBoxed(info, arg, alloc)
	}
}

func checkBoxed(info *types.Info, arg ast.Expr, alloc func(token.Pos, string)) {
	tv, ok := info.Types[arg]
	if !ok || tv.Type == nil {
		return
	}
	if boxes(tv.Type) {
		alloc(arg.Pos(), "argument boxed into interface allocates")
	}
}

// boxes reports whether storing a value of type t into an interface
// allocates: true for every concrete type that is not pointer-shaped.
func boxes(t types.Type) bool {
	if b, ok := t.(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	if types.IsInterface(t) {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		if u.Kind() == types.UnsafePointer {
			return false
		}
	}
	return true
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	e, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (e.Kind() == types.Byte || e.Kind() == types.Rune)
}

// capturedVar returns the name of a variable the literal captures
// from an enclosing function, or "" when the closure is static.
// Package-level variables and struct fields are not captures.
func capturedVar(info *types.Info, lit *ast.FuncLit) string {
	name := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			name = v.Name()
		}
		return true
	})
	return name
}

// denied returns the display name of an always-allocating stdlib
// callee, or "".
func denied(fn *types.Func) string {
	path := fn.Pkg().Path()
	if denyPkg[path] || denyFunc[path+"."+fn.Name()] {
		return path + "." + fn.Name()
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	recv := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	if denyRecv[recv] {
		return recv + "." + fn.Name()
	}
	if recv == "sync.Pool" && fn.Name() == "Get" {
		return "sync.Pool.Get" // may invoke New; hits must be proven by the runtime pin
	}
	return ""
}

func isHot(d *ast.FuncDecl) bool {
	if d.Doc == nil {
		return false
	}
	for _, c := range d.Doc.List {
		if isAnnotation(c.Text) {
			return true
		}
	}
	return false
}

func stdlibPath(path string) bool {
	first, _, _ := strings.Cut(path, "/")
	return !strings.Contains(first, ".")
}

func testFile(fset *token.FileSet, f *ast.File) bool {
	return strings.HasSuffix(fset.Position(f.Package).Filename, "_test.go")
}
