package loader

import (
	"path/filepath"
	"reflect"
	"testing"

	"example.com/scar/tools/internal/lint/analysis"
)

// canned -m=2 output in the shape the gc toolchain actually prints:
// package headers, inline chatter, parameter-leak notes, indented
// explanation lines, trailing-colon variants, and replayed duplicates.
const cannedEscapes = `# example.com/scar/internal/eval
internal/eval/compiled.go:100:6: can inline (*Compiled).bucket with cost 62
internal/eval/compiled.go:288:27: arg to fmt.Sprintf escapes to heap:
internal/eval/compiled.go:288:27:   flow: {heap} = &{storage for arg}:
internal/eval/compiled.go:288:27:     from arg (spill) at internal/eval/compiled.go:288:27
internal/eval/compiled.go:304:16: make([]Segment, len(segs)) escapes to heap
internal/eval/compiled.go:304:16: make([]Segment, len(segs)) escapes to heap
internal/eval/compiled.go:310:2: moved to heap: scratch
internal/eval/compiled.go:50:20: leaking param: segs
# example.com/scar/internal/serve
internal/serve/shard.go:177:15: &entry{...} escapes to heap
`

func TestParseEscapes(t *testing.T) {
	facts := ParseEscapes("/mod", cannedEscapes)

	evalFile := filepath.Join("/mod", "internal/eval/compiled.go")
	want := []analysis.HeapSite{
		{Line: 288, Col: 27, Message: "arg to fmt.Sprintf escapes to heap"},
		{Line: 304, Col: 16, Message: "make([]Segment, len(segs)) escapes to heap"},
		{Line: 310, Col: 2, Message: "moved to heap: scratch"},
	}
	if got := facts.Sites[evalFile]; !reflect.DeepEqual(got, want) {
		t.Errorf("eval sites:\n got %v\nwant %v", got, want)
	}

	serveFile := filepath.Join("/mod", "internal/serve/shard.go")
	if got := facts.Sites[serveFile]; len(got) != 1 || got[0].Line != 177 {
		t.Errorf("serve sites: got %v, want the line-177 entry escape", got)
	}

	if got := facts.Range(evalFile, 300, 320); len(got) != 2 {
		t.Errorf("Range(300,320): got %v, want the 304 and 310 sites", got)
	}
	if got := facts.Range(evalFile, 1, 100); got != nil {
		t.Errorf("Range(1,100): got %v, want none (inline/leak chatter must not parse as heap sites)", got)
	}
}
