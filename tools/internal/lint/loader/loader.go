// Package loader turns `go list` package patterns into type-checked
// lint.Packages without importing anything beyond the standard
// library: it shells out to `go list -e -export -deps -json` for
// package metadata and compiled export data, parses each matched
// package's sources, and type-checks them with an importer that reads
// the export files go list reported. Dependencies are never re-parsed
// — their types come from the same build cache the compiler filled —
// so loading stays fast and works offline.
package loader

import (
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"example.com/scar/tools/internal/lint"
	"example.com/scar/tools/internal/lint/analysis"
)

// listPackage is the subset of `go list -json` output the loader uses.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load lists patterns in dir and returns the matched (non-dependency)
// packages, parsed and type-checked, sorted by import path.
func Load(dir string, patterns ...string) ([]*lint.Package, error) {
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %w", strings.Join(patterns, " "), err)
	}

	exports := make(map[string]string)
	var roots []*listPackage
	dec := json.NewDecoder(strings.NewReader(string(out)))
	for {
		p := new(listPackage)
		if err := dec.Decode(p); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("parsing go list output: %w", err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			roots = append(roots, p)
		}
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i].ImportPath < roots[j].ImportPath })

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (does the tree build?)", path)
		}
		return os.Open(f)
	})

	var pkgs []*lint.Package
	for _, p := range roots {
		if p.Error != nil {
			return nil, fmt.Errorf("%s: %s", p.ImportPath, p.Error.Err)
		}
		if len(p.GoFiles) == 0 {
			continue
		}
		pkg, err := check(fset, imp, p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// EscapeDiagnostics builds patterns in dir with -gcflags=-m=2 and
// returns the heap-allocation facts the compiler printed. The gc
// toolchain replays diagnostics from the build cache, so the facts
// are complete even when nothing recompiles. Paths in the returned
// facts are absolute.
func EscapeDiagnostics(dir string, patterns ...string) (*analysis.EscapeFacts, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	args := append([]string{"build", "-gcflags=-m=2"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	// -m diagnostics land on stderr alongside any build errors; a
	// failed build means the facts are unusable.
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("go build -gcflags=-m=2: %w\n%s", err, out)
	}
	return ParseEscapes(abs, string(out)), nil
}

var escapeLineRE = regexp.MustCompile(`^([^\s:]+\.go):(\d+):(\d+): (.+?):?$`)

// ParseEscapes extracts heap-allocation sites from -m=2 compiler
// output. base is the directory relative paths resolve against.
// Only allocation proofs are kept ("... escapes to heap",
// "moved to heap: x"); inlining chatter, parameter-leak notes, and
// the indented explanation lines under each diagnostic are dropped,
// and replayed duplicates are deduplicated.
func ParseEscapes(base string, output string) *analysis.EscapeFacts {
	facts := &analysis.EscapeFacts{Sites: make(map[string][]analysis.HeapSite)}
	seen := make(map[string]bool)
	for _, line := range strings.Split(output, "\n") {
		if line == "" || line[0] == '#' || line[0] == ' ' || line[0] == '\t' {
			continue
		}
		m := escapeLineRE.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		msg := m[4]
		if !strings.HasSuffix(msg, "escapes to heap") && !strings.HasPrefix(msg, "moved to heap:") {
			continue
		}
		file := m[1]
		if !filepath.IsAbs(file) {
			file = filepath.Join(base, file)
		}
		ln, _ := strconv.Atoi(m[2])
		col, _ := strconv.Atoi(m[3])
		key := fmt.Sprintf("%s:%d:%d:%s", file, ln, col, msg)
		if seen[key] {
			continue
		}
		seen[key] = true
		facts.Sites[file] = append(facts.Sites[file], analysis.HeapSite{Line: ln, Col: col, Message: msg})
	}
	for _, sites := range facts.Sites {
		sort.Slice(sites, func(i, j int) bool {
			if sites[i].Line != sites[j].Line {
				return sites[i].Line < sites[j].Line
			}
			return sites[i].Col < sites[j].Col
		})
	}
	return facts
}

// check parses and type-checks one package from source against the
// export data of its dependencies.
func check(fset *token.FileSet, imp types.Importer, p *listPackage) (*lint.Package, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.ImportPath, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Uses:  make(map[*ast.Ident]types.Object),
		Defs:  make(map[*ast.Ident]types.Object),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(p.ImportPath, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("%s: type checking failed: %w", p.ImportPath, errors.Join(typeErrs...))
	}
	return &lint.Package{Fset: fset, Files: files, Pkg: tpkg, TypesInfo: info}, nil
}
