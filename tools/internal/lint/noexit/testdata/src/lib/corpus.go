// Corpus for the noexit analyzer: a library package.
package lib

import (
	"log"
	"os"
)

func bail(err error) {
	log.Printf("fine: %v", err) // logging without exiting is fine
	log.Fatal(err)              // want "log.Fatal exits the process from a library"
	log.Fatalf("%v", err)       // want "log.Fatalf exits the process from a library"
	log.Fatalln(err)            // want "log.Fatalln exits the process from a library"
	os.Exit(1)                  // want "os.Exit in a library skips deferred cleanup"
}

func sanctioned() {
	os.Exit(3) //scar:noexit corpus: test binary exit code contract
}
