// Corpus proving noexit's package-main gate: entry points may exit.
package main

import (
	"log"
	"os"
)

func main() {
	log.Fatal("entry points decide the exit")
	os.Exit(1)
}
