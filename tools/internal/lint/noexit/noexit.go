// Package noexit forbids process termination outside entry-point
// packages: a library that calls os.Exit or log.Fatal* skips deferred
// cleanup (the serve layer's graceful drain, costdb persistence) and
// takes the whole daemon down to report one error. Libraries return
// errors; only package main (cmd/ and examples/) decides to exit.
package noexit

import (
	"go/ast"

	"example.com/scar/tools/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "noexit",
	Doc:  "no os.Exit or log.Fatal* outside package main",
	Run:  run,
}

var fatal = map[string]bool{"Fatal": true, "Fatalf": true, "Fatalln": true}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if pass.IsPkgFunc(sel, "os", "Exit") {
				pass.Reportf(sel.Pos(), "os.Exit in a library skips deferred cleanup; return an error and let package main exit")
			}
			if pn := pass.PkgNameOf(sel.X); pn != nil && pn.Imported().Path() == "log" && fatal[sel.Sel.Name] {
				pass.Reportf(sel.Pos(), "log.%s exits the process from a library; return an error instead", sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}
