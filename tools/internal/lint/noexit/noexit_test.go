package noexit_test

import (
	"testing"

	"example.com/scar/tools/internal/lint/analysistest"
	"example.com/scar/tools/internal/lint/noexit"
)

func TestLibrary(t *testing.T) {
	analysistest.Run(t, "testdata", noexit.Analyzer, "lib")
}

func TestPackageMain(t *testing.T) {
	analysistest.Run(t, "testdata", noexit.Analyzer, "mainpkg")
}
