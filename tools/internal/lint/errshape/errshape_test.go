package errshape_test

import (
	"testing"

	"example.com/scar/tools/internal/lint/analysistest"
	"example.com/scar/tools/internal/lint/errshape"
)

func TestServePackage(t *testing.T) {
	analysistest.Run(t, "testdata", errshape.Analyzer, "internal/serve")
}

func TestOtherPackage(t *testing.T) {
	analysistest.Run(t, "testdata", errshape.Analyzer, "other")
}
