// Corpus proving errshape's path gate: outside internal/serve the
// analyzer stays silent.
package other

import "net/http"

func free(w http.ResponseWriter) {
	http.Error(w, "not the serve layer", http.StatusBadRequest)
	w.WriteHeader(http.StatusTeapot)
}
