// Corpus for the errshape analyzer: the import path ends in
// internal/serve, so the wire-shape contract applies.
package serve

import (
	"fmt"
	"net/http"
)

// writeError is the package's one status sink; the raw writes inside
// it are the point of the exemption.
func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, `{"error":%q,"status":%d}`, msg, status)
}

func handleBad(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "nope", http.StatusBadRequest) // want "http.Error bypasses the unified JSON error shape"
	w.WriteHeader(http.StatusBadRequest)         // want "non-200 statuses must go through writeError"
	w.WriteHeader(418)                           // want "non-200 statuses must go through writeError"
}

func handleVariable(w http.ResponseWriter, status int) {
	w.WriteHeader(status) // want "non-200 statuses must go through writeError"
}

func handleGood(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusOK)
	w.WriteHeader(200)
	writeError(w, http.StatusBadRequest, "routed properly")
}

// statusRecorder forwards the status it observes; WriteHeader
// decorators record, they do not originate.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}
