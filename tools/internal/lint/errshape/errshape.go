// Package errshape keeps the serve layer's wire contract unified:
// every non-200 HTTP response is produced by the package's single
// writeError helper, which renders the one documented JSON error shape
// {error, status[, retry_after_sec]}. Inside internal/serve it forbids
//
//   - http.Error, which writes text/plain and bypasses the shape, and
//   - explicit WriteHeader calls with anything but http.StatusOK
//
// except inside writeError itself (where the status write lives) and
// inside WriteHeader methods (middleware decorators forwarding to the
// wrapped ResponseWriter record the status, they do not originate it).
package errshape

import (
	"go/ast"
	"go/types"
	"strings"

	"example.com/scar/tools/internal/lint/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "errshape",
	Doc:  "internal/serve must route every non-200 response through writeError",
	Run:  run,
}

// servePackage reports whether the import path is the serve layer.
func servePackage(path string) bool {
	return strings.Contains("/"+path+"/", "/internal/serve/")
}

func run(pass *analysis.Pass) error {
	if !servePackage(pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if pass.IsPkgFunc(sel, "net/http", "Error") && name != "writeError" {
			pass.Reportf(call.Pos(), "http.Error bypasses the unified JSON error shape; use writeError")
			return true
		}
		if isWriteHeader(pass, sel) && name != "writeError" && name != "WriteHeader" &&
			len(call.Args) == 1 && !isStatusOK(pass, call.Args[0]) {
			pass.Reportf(call.Pos(), "non-200 statuses must go through writeError, not a raw WriteHeader")
		}
		return true
	})
}

// isWriteHeader matches a method call named WriteHeader taking one int
// — the http.ResponseWriter shape — without requiring the receiver to
// be the interface itself, so decorators and embedded writers match.
func isWriteHeader(pass *analysis.Pass, sel *ast.SelectorExpr) bool {
	if sel.Sel.Name != "WriteHeader" {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Type() == nil {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Params().Len() != 1 {
		return false
	}
	b, ok := sig.Params().At(0).Type().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Int
}

// isStatusOK matches the literal 200 and the http.StatusOK constant
// (directly or through any constant whose value is 200).
func isStatusOK(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	return tv.Value.String() == "200"
}
