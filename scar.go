// Package scar is a Go implementation of SCAR — the scheduler for
// multi-model AI workloads on heterogeneous multi-chiplet module (MCM)
// accelerators from Odema et al., MICRO 2024 — together with every
// substrate the paper depends on: a MAESTRO-style analytical cost model
// for NVDLA-like and ShiDianNao-like dataflows, the Simba-style MCM
// package model with the Figure 6 chiplet organizations, a 13-network
// model zoo covering the paper's MLPerf and XRBench scenarios, the
// Standalone and NN-baton baselines, and the full experiment harness.
//
// Quick start — the context-first Request/Session surface:
//
//	sched := scar.NewScheduler(scar.DefaultOptions())
//	sc, _ := scar.ScenarioByNumber(4)               // Table III Scenario 4
//	pkg, _ := scar.MCMByName("het-sides", 3, 3, scar.DatacenterChiplet())
//	res, _ := sched.Schedule(ctx, &scar.Request{
//		Scenario: &sc, MCM: pkg, Objective: scar.EDPObjective(),
//	})
//	fmt.Println(scar.RenderSchedule(&sc, pkg, res.Schedule, res.Metrics))
//
// Schedule honors ctx cancellation and deadlines with anytime semantics:
// an interrupted search returns the best incumbent found so far with
// Result.Partial set. For repeated work on one (scenario, MCM) pair,
// NewSession compiles the evaluation state once and unifies evaluation,
// tracing, link-load inspection and the paper baselines behind a single
// handle (see Session).
//
// Beyond the paper's one-shot search, the package serves schedules
// online: Service (cmd/scarserve) answers concurrent scheduling requests
// through a singleflight-deduplicated cache, and Simulate drives a fleet
// of package replicas (SimConfig.Packages) through time under Poisson or
// trace-driven request load, scoring XRBench frame-rate deadlines under
// a pluggable dispatch policy — FIFOPolicy, EDFPolicy or
// SwitchAwarePolicy (see the README's Serving section and
// examples/fleet).
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured mapping of every table and figure.
package scar

import (
	"context"
	"fmt"
	"io"

	"example.com/scar/internal/baselines"
	"example.com/scar/internal/config"
	"example.com/scar/internal/core"
	"example.com/scar/internal/costdb"
	"example.com/scar/internal/dataflow"
	"example.com/scar/internal/eval"
	"example.com/scar/internal/maestro"
	"example.com/scar/internal/mcm"
	"example.com/scar/internal/models"
	"example.com/scar/internal/obs"
	"example.com/scar/internal/online"
	"example.com/scar/internal/serve"
	"example.com/scar/internal/trace"
	"example.com/scar/internal/workload"
)

// Re-exported types: the library's public vocabulary.
type (
	// Layer is one operator of a model (7-D conv nest or GEMM view).
	Layer = workload.Layer
	// Model is an ordered layer sequence with a batch size.
	Model = workload.Model
	// Scenario is a multi-model workload (Definition 1 of the paper).
	Scenario = workload.Scenario
	// LayerRef identifies a layer by (model, index).
	LayerRef = workload.LayerRef
	// MCM is the multi-chip-module accelerator package (Definition 3).
	MCM = mcm.MCM
	// Chiplet is one accelerator die (Definition 2).
	Chiplet = mcm.Chiplet
	// ChipletSpec carries PE count, L2 size, bandwidth and clock.
	ChipletSpec = maestro.Chiplet
	// Dataflow is an accelerator dataflow descriptor.
	Dataflow = dataflow.Dataflow
	// Schedule is a schedule instance (Definition 9).
	Schedule = eval.Schedule
	// TimeWindow is one execution window (Definition 4).
	TimeWindow = eval.TimeWindow
	// Segment is a layer run mapped to one chiplet (Definition 5).
	Segment = eval.Segment
	// Metrics is a schedule evaluation (latency, energy, EDP).
	Metrics = eval.Metrics
	// WindowMetrics is the per-window breakdown.
	WindowMetrics = eval.WindowMetrics
	// Evaluator scores schedules for one (scenario, MCM) pair on a
	// compiled session (see Scheduler.Evaluator).
	Evaluator = eval.Evaluator
	// Options are the scheduler hyperparameters.
	Options = core.Options
	// Objective is an optimization metric (Definition 10).
	Objective = core.Objective
	// Request bundles one scheduling invocation — scenario, MCM,
	// objective and per-request option overrides (workers, nsplits,
	// seed, search mode, progress callback) — the single argument of
	// Scheduler.Schedule.
	Request = core.Request
	// ProgressEvent is one anytime-progress snapshot of a running
	// search (candidates explored, cache hit rate, incumbent score),
	// delivered through Options.Progress or Request.Progress.
	ProgressEvent = core.ProgressEvent
	// Result is the scheduler output. Result.Partial marks an anytime
	// result cut short by context cancellation.
	Result = core.Result
	// CostModelParams are the analytical cost model's calibration
	// constants.
	CostModelParams = maestro.Params
	// LayerCost is the intra-chiplet cost-model output for one layer
	// (latency, energy, utilization, traffic, capacity spill).
	LayerCost = maestro.Result
	// Link is one directed NoP link between adjacent chiplets.
	Link = mcm.Link
	// Timeline is an evaluated schedule trace (Gantt rendering, Chrome
	// trace export).
	Timeline = trace.Timeline
	// Span is one chiplet-occupancy interval of a Timeline.
	Span = trace.Span
)

// Online serving: the discrete-event request simulator (internal/online)
// and the concurrent scheduling service (internal/serve) behind the
// scarserve daemon.
type (
	// SimClass is one request type of a simulation: a scheduled
	// scenario with deadlines, switch cost and an arrival process.
	SimClass = online.Class
	// SimConfig drives one simulation run.
	SimConfig = online.Config
	// SimReport is the simulation output: SLA attainment, latency
	// percentiles, queue depth, utilization, energy.
	SimReport = online.Report
	// SimOutcome is one simulated request's life cycle.
	SimOutcome = online.RequestOutcome
	// Arrivals generates a deterministic arrival-time sequence.
	Arrivals = online.Arrivals
	// PoissonArrivals is a seeded Poisson arrival process.
	PoissonArrivals = online.Poisson
	// TraceArrivals replays explicit arrival timestamps.
	TraceArrivals = online.Trace
	// PeriodicArrivals emits one request per fixed period (the XRBench
	// frame clock).
	PeriodicArrivals = online.Periodic
	// SimPolicy picks which waiting request a freed package serves next
	// (SimConfig.Policy); implementations must be deterministic pure
	// functions so simulations stay bit-identical under concurrency.
	SimPolicy = online.Policy
	// SimQueued is the policy-visible view of one waiting request.
	SimQueued = online.Queued
	// SimPackageView is the policy-visible state of the dispatching
	// package replica (index, configured class, same-class run length).
	SimPackageView = online.PackageView
	// FIFOPolicy serves strictly in arrival order (the default).
	FIFOPolicy = online.FIFO
	// EDFPolicy serves the earliest effective deadline first.
	EDFPolicy = online.EDF
	// SwitchAwarePolicy amortizes schedule switches by serving
	// same-class runs up to a hysteresis bound (MaxRun).
	SwitchAwarePolicy = online.SwitchAware
	// SimPackageReport is one replica's aggregate in a SimReport.
	SimPackageReport = online.PackageReport
	// SimAdmission is the simulator's admission control: a hard queue
	// bound, low/high watermark backpressure with hysteresis and a
	// pluggable load shedder (SimConfig.Admission; nil admits all).
	SimAdmission = online.Admission
	// SimShedder decides whether an arrival is shed; implementations
	// must be deterministic pure functions (see SimConfig.Admission).
	SimShedder = online.Shedder
	// DropTailShedder sheds every arrival while watermark backpressure
	// is engaged.
	DropTailShedder = online.DropTail
	// DeadlineAwareShedder sheds the arrivals whose queue-implied start
	// would already bust their deadline, protecting the accepted
	// requests' SLA under overload.
	DeadlineAwareShedder = online.DeadlineAware
	// SimShedOutcome is one shed request's record in a SimReport.
	SimShedOutcome = online.ShedOutcome
	// SimAdmissionView is the shedder-visible simulator state.
	SimAdmissionView = online.AdmissionView
	// Service is the concurrent scheduling service: a singleflight-
	// deduplicated schedule cache over a shared warm cost database,
	// with an http.Handler exposing /schedule, /simulate and /stats.
	Service = serve.Service
	// ServeRequest identifies one scheduling problem for the service.
	ServeRequest = serve.Request
	// ServeStats is a service counter snapshot.
	ServeStats = serve.Stats
	// ServeConfig tunes the service's cache fabric, overload protection
	// and observability; the zero value is the production default.
	ServeConfig = serve.Config
	// ServeEndpointStats is one HTTP endpoint's latency view in
	// ServeStats (requests plus interpolated p50/p95/p99).
	ServeEndpointStats = serve.EndpointStats
	// Obs is the observability bundle a service records into: a sharded
	// metrics registry (Prometheus text exposition), a bounded
	// per-request span tracer (Chrome trace export) and a structured
	// logger. One Obs belongs to one Service.
	Obs = obs.Obs
	// ObsConfig configures an observability bundle.
	ObsConfig = obs.Config
)

// Online serving constructors.
var (
	// Simulate runs the discrete-event serving simulator; results are
	// bit-identical for a fixed configuration.
	Simulate = online.Simulate
	// NewSimClass assembles a simulator class from a scheduled
	// scenario: evaluated metrics, per-model deadlines, switch cost and
	// trace spans.
	NewSimClass = online.NewClass
	// DeriveDeadlines maps a scenario's models to deadlines: XRBench
	// frame budgets where frame rates exist, slack-scaled scheduled
	// latencies elsewhere.
	DeriveDeadlines = online.DeriveDeadlines
	// ScheduleSwitchCost is the reconfiguration price of switching the
	// package to a new schedule (first-window weight reload).
	ScheduleSwitchCost = online.SwitchCost
	// NewTrace builds a validated trace-driven arrival process
	// (non-ascending timestamps are rejected at construction).
	NewTrace = online.NewTrace
	// PolicyByName resolves the dispatch-policy wire vocabulary:
	// "fifo", "edf", "switch-aware" (the /simulate policy field).
	PolicyByName = online.PolicyByName
	// PolicyNames lists the dispatch-policy wire vocabulary.
	PolicyNames = online.PolicyNames
	// ShedderByName resolves the shedding-policy wire vocabulary:
	// "drop-tail", "deadline-aware" (the /simulate shedder field).
	ShedderByName = online.ShedderByName
	// ShedderNames lists the shedding-policy wire vocabulary.
	ShedderNames = online.ShedderNames
	// NewService builds a scheduling service with a fresh cost
	// database; see Service.
	NewService = serve.New
	// NewObs builds an observability bundle (metrics registry, request
	// tracer, structured logger) for ServeConfig.Obs; the zero ObsConfig
	// enables metrics and tracing and discards logs.
	NewObs = obs.New
	// NewObsLogger builds a structured (slog) logger at a named level —
	// "debug", "info", "warn" or "error" — for ObsConfig.Log.
	NewObsLogger = obs.NewLogger
	// ParseChromeTrace reconstructs a Timeline from Chrome trace-event
	// JSON (the inverse of Timeline.ChromeTrace; also the format the
	// service's GET /trace endpoint serves).
	ParseChromeTrace = trace.ParseChromeTrace
)

// NewServiceWithConfig builds a scheduling service with a fresh cost
// database and an explicit serve configuration — cache fabric, overload
// protection, observability (ServeConfig.Obs, ServeConfig.
// ExposeMetrics).
func NewServiceWithConfig(opts Options, cfg ServeConfig) *Service {
	return serve.NewWithConfig(costdb.New(maestro.DefaultParams()), opts, cfg)
}

// Serve-layer overload protection (see Service and cmd/scarserve): the
// daemon sheds work with ErrServeSaturated (HTTP 429 + Retry-After)
// when its concurrent-search limit is held past the admission wait,
// and with ErrServeDraining (HTTP 503) after Service.BeginDrain.
var (
	ErrServeSaturated = serve.ErrSaturated
	ErrServeDraining  = serve.ErrDraining
)

// ServeFailPoints is deterministic fault injection for serve-layer
// chaos tests (serve.Config.FailPoints).
type ServeFailPoints = serve.FailPoints

// Layer constructors.
var (
	// Conv builds a dense convolution (input dims, square kernel).
	Conv = workload.Conv
	// DWConv builds a depthwise convolution.
	DWConv = workload.DWConv
	// GEMM builds a matrix multiply m x k -> m x n.
	GEMM = workload.GEMM
	// Pool builds a pooling layer.
	Pool = workload.Pool
	// Eltwise builds an element-wise layer.
	Eltwise = workload.Eltwise
	// Embedding builds a table-lookup layer.
	Embedding = workload.Embedding
	// NewModel builds a model from layers.
	NewModel = workload.NewModel
	// NewScenario builds a multi-model scenario.
	NewScenario = workload.NewScenario
)

// Objectives (the paper's Latency / Energy / EDP searches).
var (
	LatencyObjective = core.LatencyObjective
	EnergyObjective  = core.EnergyObjective
	EDPObjective     = core.EDPObjective
	CustomObjective  = core.CustomObjective
	ObjectiveByName  = core.ObjectiveByName
	// LatencyBoundedEDP builds the Section VI score: EDP, invalid above
	// a latency bound. Wrap it with CustomObjective.
	LatencyBoundedEDP = eval.LatencyBoundedEDP
	// PerModelLatencyBoundedEDP builds the Section VI per-model-target
	// score: EDP, invalid when a bounded model finishes late. The
	// constraint is enforced when schedule candidates are selected.
	PerModelLatencyBoundedEDP = eval.PerModelLatencyBoundedEDP
)

// Options presets.
var (
	// DefaultOptions is the paper-default configuration (nsplits=4,
	// brute-force tree search).
	DefaultOptions = core.DefaultOptions
	// FastOptions trades search quality for speed.
	FastOptions = core.FastOptions
)

// Search modes.
const (
	SearchBruteForce   = core.SearchBruteForce
	SearchEvolutionary = core.SearchEvolutionary
)

// Chiplet hardware profiles (Section V-A).
var (
	// DatacenterChiplet is the 4096-PE, 10 MB configuration.
	DatacenterChiplet = maestro.DefaultDatacenterChiplet
	// EdgeChiplet is the 256-PE AR/VR configuration.
	EdgeChiplet = maestro.DefaultEdgeChiplet
)

// Dataflows.
var (
	NVDLA      = dataflow.NVDLA
	ShiDianNao = dataflow.ShiDianNao
)

// MCMByName builds one of the Figure 6 package organizations:
// simba-shi, simba-nvd, het-cb, het-sides, simba-t-shi, simba-t-nvd,
// het-t, het-cross, motivational-2x2.
func MCMByName(pattern string, w, h int, spec ChipletSpec) (*MCM, error) {
	return mcm.ByName(pattern, w, h, spec)
}

// MCMPatterns lists the recognized package pattern names.
func MCMPatterns() []string { return mcm.PatternNames() }

// NewCustomMCM builds a package with an arbitrary NoP topology: explicit
// per-chiplet dataflows (row-major), an undirected link list, and the
// chiplet IDs carrying off-chip interfaces. SCAR schedules it unchanged —
// the scheduler consumes only adjacency (the paper's Section V-E
// generalization claim).
func NewCustomMCM(name string, w, h int, dataflows []Dataflow, links [][2]int, memIF []int, spec ChipletSpec) (*MCM, error) {
	return mcm.NewCustom(name, w, h, dataflows, links, memIF, spec)
}

// ModelByName builds a zoo model: resnet50, bert-large, bert-base,
// gpt-l, unet, googlenet, d2go, planercnn, midas, emformer, hrvit,
// handsp, eyecod, sp2dense.
func ModelByName(name string, batch int) (Model, error) {
	return models.ByName(name, batch)
}

// ModelNames lists the zoo.
func ModelNames() []string { return models.Names() }

// ScenarioByNumber builds Table III scenario n (1-10).
func ScenarioByNumber(n int) (Scenario, error) { return models.ScenarioByNumber(n) }

// DatacenterScenarios returns scenarios 1-5.
func DatacenterScenarios() []Scenario { return models.DatacenterScenarios() }

// ARVRScenarios returns scenarios 6-10.
func ARVRScenarios() []Scenario { return models.ARVRScenarios() }

// Scheduler is the SCAR scheduling framework.
type Scheduler struct {
	db    *costdb.DB
	inner *core.Scheduler
	opts  Options
}

// NewScheduler builds a scheduler with a fresh layer-cost database.
func NewScheduler(opts Options) *Scheduler {
	db := costdb.New(maestro.DefaultParams())
	return &Scheduler{db: db, inner: core.New(db, opts), opts: opts}
}

// NewSchedulerWithCostModel builds a scheduler with custom cost-model
// calibration constants.
func NewSchedulerWithCostModel(opts Options, params CostModelParams) *Scheduler {
	db := costdb.New(params)
	return &Scheduler{db: db, inner: core.New(db, opts), opts: opts}
}

// NewRequest builds the positional form of a Request: schedule sc on m
// under obj with no per-request overrides.
var NewRequest = core.NewRequest

// Schedule runs the full SCAR search for the request and returns the
// optimized schedule with its evaluated metrics.
//
// ctx carries cancellation and deadlines into every layer of the search
// with anytime semantics: on expiry the best incumbent found so far is
// returned with Result.Partial set, or ctx's error when nothing feasible
// was found yet. An uncancelled ctx leaves results bit-identical to the
// pre-context API.
func (s *Scheduler) Schedule(ctx context.Context, req *Request) (*Result, error) {
	return s.inner.Schedule(ctx, req)
}

// ScheduleScenario runs the EDP-era positional form of Schedule with no
// cancellation.
//
// Deprecated: build a Request and call Schedule(ctx, req) — it adds
// cancellation, deadlines, per-request overrides and progress reporting.
// ScheduleScenario remains as a thin wrapper for one migration cycle.
func (s *Scheduler) ScheduleScenario(sc *Scenario, m *MCM, obj Objective) (*Result, error) {
	return s.inner.Schedule(context.Background(), NewRequest(sc, m, obj))
}

// ScheduleUniformPacking is the packing-ablation variant (uniform
// layer-to-window distribution instead of Algorithm 1), with the same
// context contract as Schedule.
func (s *Scheduler) ScheduleUniformPacking(ctx context.Context, req *Request) (*Result, error) {
	return s.inner.ScheduleUniformPacking(ctx, req)
}

// Session is a compiled handle for one (scenario, MCM) pair: it builds
// the evaluation session once and serves every per-pair operation —
// searching, scoring external schedules, timelines, link loads, the
// paper baselines and simulator-class assembly — without recompiling per
// call the way the deprecated positional Scheduler methods do.
//
// A Session is immutable after NewSession and safe for concurrent use.
type Session struct {
	sched *Scheduler
	sc    *Scenario
	m     *MCM
	ev    *Evaluator
}

// NewSession validates the pair once and returns its compiled handle.
// The heavy state (dense cost tables) is still built lazily on first
// use, then shared by every method and Schedule call on the session.
func (s *Scheduler) NewSession(sc *Scenario, m *MCM) (*Session, error) {
	if sc == nil || m == nil {
		return nil, fmt.Errorf("scar: session needs a scenario and an MCM")
	}
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &Session{sched: s, sc: sc, m: m, ev: eval.New(s.db, m, sc, s.opts.Eval)}, nil
}

// Scenario returns the session's workload.
func (ses *Session) Scenario() *Scenario { return ses.sc }

// MCM returns the session's package model.
func (ses *Session) MCM() *MCM { return ses.m }

// Evaluator exposes the session's shared evaluator — the input
// NewSimClass needs to assemble simulator request classes.
func (ses *Session) Evaluator() *Evaluator { return ses.ev }

// Schedule runs the SCAR search for the session's pair under obj, on the
// session's compiled evaluation state. Context semantics match
// Scheduler.Schedule.
func (ses *Session) Schedule(ctx context.Context, obj Objective) (*Result, error) {
	return ses.ScheduleRequest(ctx, &Request{Objective: obj})
}

// ScheduleRequest is Schedule with per-request overrides: req.Scenario
// and req.MCM are filled from the session (it is an error to point them
// elsewhere), and req.Compiled is bound to the session's compiled state.
func (ses *Session) ScheduleRequest(ctx context.Context, req *Request) (*Result, error) {
	if req == nil {
		return nil, fmt.Errorf("scar: nil request")
	}
	r := *req
	if r.Scenario == nil {
		r.Scenario = ses.sc
	} else if r.Scenario != ses.sc {
		return nil, fmt.Errorf("scar: request scenario differs from the session's")
	}
	if r.MCM == nil {
		r.MCM = ses.m
	} else if r.MCM != ses.m {
		return nil, fmt.Errorf("scar: request MCM differs from the session's")
	}
	r.Compiled = ses.ev.Compile()
	return ses.sched.inner.Schedule(ctx, &r)
}

// Evaluate scores an externally built schedule on the session.
func (ses *Session) Evaluate(sched *Schedule) (Metrics, error) {
	return ses.ev.Evaluate(sched)
}

// Timeline builds the execution trace of a schedule: per-chiplet spans
// consistent with the evaluator's pipeline model. Render it with
// Timeline.Gantt or export it with Timeline.ChromeTrace.
func (ses *Session) Timeline(sched *Schedule) *Timeline {
	return trace.Build(ses.ev, ses.sc, ses.m, sched)
}

// LinkLoads maps one window's inter-chiplet traffic onto the NoP links
// (bytes per directed link) — the diagnostic behind the contention model.
func (ses *Session) LinkLoads(w TimeWindow) map[Link]int64 {
	return ses.ev.LinkLoads(w)
}

// Standalone runs the paper's Standalone baseline: one chiplet per model.
func (ses *Session) Standalone() (*Schedule, Metrics, error) {
	return baselines.StandaloneOn(ses.ev)
}

// NNBaton runs the NN-baton-style single-model baseline.
func (ses *Session) NNBaton() (*Schedule, Metrics, error) {
	return baselines.NNBatonOn(ses.ev)
}

// SimClass assembles a request class for the discrete-event simulator
// from a schedule of this session's pair (see NewSimClass). Classes from
// several sessions combine into one SimConfig — with Packages replicas
// and a dispatch Policy (FIFOPolicy, EDFPolicy, SwitchAwarePolicy) —
// and run through Simulate; examples/fleet shows a two-package AR/VR
// deployment built this way.
func (ses *Session) SimClass(name string, sched *Schedule, arr Arrivals, slackFactor float64) (SimClass, error) {
	return online.NewClass(name, ses.ev, sched, arr, slackFactor)
}

// session builds a throwaway Session for the deprecated positional
// wrappers below; errors surface lazily through the delegated call.
func (s *Scheduler) session(sc *Scenario, m *MCM) *Session {
	return &Session{sched: s, sc: sc, m: m, ev: eval.New(s.db, m, sc, s.opts.Eval)}
}

// Evaluate scores an externally built schedule on this scheduler's cost
// database.
//
// Deprecated: use NewSession(sc, m).Evaluate(sched) — a Session compiles
// the evaluation state once across calls instead of once per call.
func (s *Scheduler) Evaluate(sc *Scenario, m *MCM, sched *Schedule) (Metrics, error) {
	return s.session(sc, m).Evaluate(sched)
}

// Evaluator builds a reusable schedule evaluator for one (scenario, MCM)
// pair on this scheduler's cost database.
//
// Deprecated: use NewSession(sc, m).Evaluator() — the session shares the
// compiled state with every other per-pair operation.
func (s *Scheduler) Evaluator(sc *Scenario, m *MCM) *Evaluator {
	return s.session(sc, m).Evaluator()
}

// SaveCostDB writes the scheduler's warmed layer-cost database as a gob
// stream, so a later process can LoadCostDB and skip cost-model warmup.
func (s *Scheduler) SaveCostDB(w io.Writer) error { return s.db.Save(w) }

// LoadCostDB merges a previously saved cost-database snapshot; snapshots
// calibrated with different cost-model constants are rejected.
func (s *Scheduler) LoadCostDB(r io.Reader) error { return s.db.Load(r) }

// Standalone runs the paper's Standalone baseline: one chiplet per model.
//
// Deprecated: use NewSession(sc, m).Standalone().
func (s *Scheduler) Standalone(sc *Scenario, m *MCM) (*Schedule, Metrics, error) {
	return s.session(sc, m).Standalone()
}

// NNBaton runs the NN-baton-style single-model baseline.
//
// Deprecated: use NewSession(sc, m).NNBaton().
func (s *Scheduler) NNBaton(sc *Scenario, m *MCM) (*Schedule, Metrics, error) {
	return s.session(sc, m).NNBaton()
}

// LinkLoads maps one window's inter-chiplet traffic onto the NoP links.
//
// Deprecated: use NewSession(sc, m).LinkLoads(w) — per-window calls on a
// session share one compiled evaluation state.
func (s *Scheduler) LinkLoads(sc *Scenario, m *MCM, w TimeWindow) map[Link]int64 {
	return s.session(sc, m).LinkLoads(w)
}

// Timeline builds the execution trace of a schedule.
//
// Deprecated: use NewSession(sc, m).Timeline(sched).
func (s *Scheduler) Timeline(sc *Scenario, m *MCM, sched *Schedule) *Timeline {
	return s.session(sc, m).Timeline(sched)
}

// DefaultCostModelParams returns the calibrated cost-model constants.
func DefaultCostModelParams() CostModelParams { return maestro.DefaultParams() }

// AnalyzeLayer probes the intra-chiplet cost model directly: the cost of
// one layer under one dataflow on one chiplet configuration. Useful for
// exploring layer-dataflow affinity (the paper's Section II-C analysis).
func AnalyzeLayer(l Layer, df Dataflow, spec ChipletSpec) LayerCost {
	return maestro.Analyze(l, df, spec, maestro.DefaultParams())
}

// Config file I/O (the framework's documented inputs and outputs).
var (
	// LoadWorkload reads a JSON multi-model workload description.
	LoadWorkload = config.LoadWorkload
	// LoadMCM reads a JSON MCM description.
	LoadMCM = config.LoadMCM
	// ParseWorkload decodes a workload description.
	ParseWorkload = config.ParseWorkload
	// ParseMCM decodes an MCM description.
	ParseMCM = config.ParseMCM
	// ExportSchedule renders a schedule and metrics as JSON.
	ExportSchedule = config.ExportSchedule
)
