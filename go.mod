module example.com/scar

go 1.24.0
