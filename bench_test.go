package scar_test

// The benchmark harness regenerates every table and figure of the SCAR
// paper's evaluation with paper-default search budgets, one benchmark per
// artifact (see the per-experiment index in DESIGN.md). Benchmarks print
// a one-line summary; the full tables come from `go run ./cmd/scarbench`.
//
// The Table IV / Figure 7 sweep and the Table V / Figure 10 sweep are
// shared across their benchmarks through a lazy cache so the suite stays
// tractable.

import (
	"context"
	"fmt"
	"io"
	"sync"
	"testing"

	scar "example.com/scar"
	"example.com/scar/internal/experiments"
	"example.com/scar/internal/maestro"
)

var (
	suiteOnce sync.Once
	suite     *experiments.Suite

	dcOnce sync.Once
	dcRes  *experiments.DatacenterResult
	dcErr  error

	arOnce sync.Once
	arRes  *experiments.ARVRResult
	arErr  error
)

func sharedSuite() *experiments.Suite {
	suiteOnce.Do(func() { suite = experiments.NewSuite() })
	return suite
}

func datacenterSweep(b *testing.B) *experiments.DatacenterResult {
	dcOnce.Do(func() { dcRes, dcErr = sharedSuite().Datacenter(context.Background()) })
	if dcErr != nil {
		b.Fatal(dcErr)
	}
	return dcRes
}

func arvrSweep(b *testing.B) *experiments.ARVRResult {
	arOnce.Do(func() { arRes, arErr = sharedSuite().ARVR(context.Background()) })
	if arErr != nil {
		b.Fatal(arErr)
	}
	return arRes
}

// BenchmarkFig02Motivational regenerates the Figure 2 study: EDP of the
// six scheduling cases on the 2x2 heterogeneous MCM.
func BenchmarkFig02Motivational(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := sharedSuite().Motivational(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("fig2: A2/A1=%.2f A3/A1=%.2f B2/B1=%.2f B3/B1=%.2f (paper 0.78/0.52/0.30/0.28)\n",
				res.Ratio["A2"], res.Ratio["A3"], res.Ratio["B2"], res.Ratio["B3"])
		}
	}
}

// BenchmarkTable04Datacenter regenerates Table IV: latency and EDP of
// every strategy on scenarios 1-5 under the latency and EDP searches.
func BenchmarkTable04Datacenter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := datacenterSweep(b)
		if i == 0 {
			res.PrintTableIV(io.Discard)
			fmt.Printf("table4: %d cells evaluated\n", len(res.Cells))
		}
	}
}

// BenchmarkFig07SearchBars regenerates the Figure 7 normalized bars.
func BenchmarkFig07SearchBars(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := datacenterSweep(b)
		series := res.Fig7()
		if i == 0 {
			fmt.Printf("fig7: %d normalized series\n", len(series))
		}
	}
}

// BenchmarkFig08Pareto regenerates the Figure 8 Pareto clouds for
// scenarios 3 and 4.
func BenchmarkFig08Pareto(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, sc := range []int{3, 4} {
			res, err := sharedSuite().Pareto(context.Background(), sc, experiments.DatacenterStrategies(), 3, 3, maestro.DefaultDatacenterChiplet())
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				front := 0
				for _, p := range res.Points {
					if p.OnFront {
						front++
					}
				}
				fmt.Printf("fig8 sc%d: %d points, %d on front\n", sc, len(res.Points), front)
			}
		}
	}
}

// BenchmarkFig09TopSchedule regenerates the Figure 9 / Table VI breakdown
// of the winning Het-Sides schedule for Scenario 4.
func BenchmarkFig09TopSchedule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := sharedSuite().TopSchedule(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("fig9: %d windows, EDP %.4g J.s\n", len(res.WindowLat), res.Result.Metrics.EDP)
		}
	}
}

// BenchmarkTable05ARVR regenerates Table V / Figure 10: the AR/VR EDP
// search relative to Standalone (NVD).
func BenchmarkTable05ARVR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := arvrSweep(b)
		if i == 0 {
			res.PrintTableV(io.Discard)
			lat, edp := res.Relative(9, "Het-Sides")
			fmt.Printf("table5: sc9 Het-Sides rel lat=%.2f rel EDP=%.2f\n", lat, edp)
		}
	}
}

// BenchmarkFig11ARVRPareto regenerates the Figure 11 AR/VR Pareto clouds
// (scenarios 6, 7, 8, 10).
func BenchmarkFig11ARVRPareto(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, sc := range []int{6, 7, 8, 10} {
			res, err := sharedSuite().Pareto(context.Background(), sc, experiments.DatacenterStrategies(), 3, 3, maestro.DefaultEdgeChiplet())
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				fmt.Printf("fig11 sc%d: %d points\n", sc, len(res.Points))
			}
		}
	}
}

// BenchmarkFig12Triangular regenerates the Figure 12 triangular-NoP
// ablation.
func BenchmarkFig12Triangular(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := sharedSuite().Triangular(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			res.Print(io.Discard)
			fmt.Printf("fig12: %d cells\n", len(res.Cells))
		}
	}
}

// BenchmarkFig13Scale6x6 regenerates the Figure 13 6x6 scaling study with
// the evolutionary search at nsplits 2 and 3.
func BenchmarkFig13Scale6x6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := sharedSuite().Scale6x6(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			het := res.Rows[2]["Het-Cross"]
			sim := res.Rows[2]["Simba-6 (NVD)"]
			fmt.Printf("fig13 nsplits=2: Het-Cross EDP %.4g vs Simba-6(NVD) %.4g (%.2fx)\n",
				het.Metrics.EDP, sim.Metrics.EDP, sim.Metrics.EDP/het.Metrics.EDP)
		}
	}
}

// BenchmarkAblationNsplits regenerates the Section V-E time-partitioning
// ablation (nsplits 1-5).
func BenchmarkAblationNsplits(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := sharedSuite().Nsplits(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("nsplits: EDP %v\n", res.EDP)
		}
	}
}

// BenchmarkAblationProv regenerates the Section V-E exhaustive-PROV
// ablation on scenarios 3-5.
func BenchmarkAblationProv(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := sharedSuite().ProvAblation(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("prov: rule %v vs exhaustive %v\n", res.Rule, res.Exhaustive)
		}
	}
}

// BenchmarkAblationPacking regenerates the Section V-E greedy-vs-uniform
// packing ablation.
func BenchmarkAblationPacking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := sharedSuite().Packing(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			fmt.Printf("packing: greedy lat %.4g vs uniform %.4g; energy %.4g vs %.4g\n",
				res.GreedyLat, res.UniformLat, res.GreedyE, res.UniformE)
		}
	}
}

// BenchmarkParallelSpeedup measures the parallel search engine: the
// serial (Workers: 1) vs parallel (Workers: GOMAXPROCS) wall clock of the
// Table III Scenario 4 schedule on Het-Sides, plus the window-cache hit
// rate and the serial/parallel bit-identity check. On a >= 4-core runner
// the speedup should exceed 2x.
func BenchmarkParallelSpeedup(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := sharedSuite().Speedup(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		if !res.Identical {
			b.Fatal("serial and parallel schedules diverged")
		}
		if i == 0 {
			fmt.Printf("speedup: %.2fx on %d workers (serial %.3fs, parallel %.3fs), cache hit rate %.1f%%\n",
				res.SpeedupFactor(), res.Workers, res.SerialSec, res.ParallelSec, 100*res.CacheHitRate)
		}
	}
}

// BenchmarkScheduleSerial and BenchmarkScheduleParallel expose the same
// schedule to `go test -bench 'Schedule(Serial|Parallel)'` for direct
// A/B timing with the standard benchmark machinery.
func benchmarkSchedule(b *testing.B, workers int) {
	sc, err := scar.ScenarioByNumber(4)
	if err != nil {
		b.Fatal(err)
	}
	pkg, err := scar.MCMByName("het-sides", 3, 3, scar.DatacenterChiplet())
	if err != nil {
		b.Fatal(err)
	}
	opts := scar.DefaultOptions()
	opts.Workers = workers
	sched := scar.NewScheduler(opts)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sched.Schedule(context.Background(), scar.NewRequest(&sc, pkg, scar.EDPObjective())); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScheduleSerial(b *testing.B)   { benchmarkSchedule(b, 1) }
func BenchmarkScheduleParallel(b *testing.B) { benchmarkSchedule(b, 0) }

// BenchmarkCompiledSearch measures end-to-end search throughput on the
// compiled evaluation session: a full two-level schedule of the default
// AR/VR scenario (Table III Scenario 6) on the Het-Sides 3x3 edge
// package, reporting logical window evaluations per second (memoization
// hits included — the rate the search engine consumes placements at).
func BenchmarkCompiledSearch(b *testing.B) {
	sc, err := scar.ScenarioByNumber(6)
	if err != nil {
		b.Fatal(err)
	}
	pkg, err := scar.MCMByName("het-sides", 3, 3, scar.EdgeChiplet())
	if err != nil {
		b.Fatal(err)
	}
	opts := scar.DefaultOptions()
	sched := scar.NewScheduler(opts)
	obj := scar.EDPObjective()
	if _, err := sched.Schedule(context.Background(), scar.NewRequest(&sc, pkg, obj)); err != nil {
		b.Fatal(err) // warm the shared cost database
	}
	b.ReportAllocs()
	b.ResetTimer()
	var evals int
	for i := 0; i < b.N; i++ {
		res, err := sched.Schedule(context.Background(), scar.NewRequest(&sc, pkg, obj))
		if err != nil {
			b.Fatal(err)
		}
		evals += res.WindowEvals
	}
	b.ReportMetric(float64(evals)/b.Elapsed().Seconds(), "window-evals/s")
}

// BenchmarkComplexity regenerates the Section II-D search-space figures.
func BenchmarkComplexity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := sharedSuite().Complexity()
		if i == 0 {
			fmt.Printf("complexity: motivational 10^%.1f, full 10^%.1f\n",
				res.MotivationalLog10, res.FullLog10)
		}
	}
}
