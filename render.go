package scar

import (
	"fmt"
	"sort"
	"strings"
)

// RenderPackage draws the MCM's chiplet grid with per-die dataflows and
// memory interfaces, in the style of the paper's Figure 6:
//
//	+-------+-------+-------+
//	| NVD M | SHI   | NVD M |
//	+-------+-------+-------+
func RenderPackage(m *MCM) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%dx%d, %s)\n", m.Name, m.Width, m.Height, m.Topology)
	sep := strings.Repeat("+-------", m.Width) + "+\n"
	for y := 0; y < m.Height; y++ {
		b.WriteString(sep)
		for x := 0; x < m.Width; x++ {
			c, _ := m.ChipletAt(x, y)
			tag := strings.ToUpper(c.Dataflow.Name)
			if len(tag) > 3 {
				tag = tag[:3]
			}
			mem := " "
			if c.HasMemIF {
				mem = "M"
			}
			fmt.Fprintf(&b, "| %-3s %s ", tag, mem)
		}
		b.WriteString("|\n")
	}
	b.WriteString(sep)
	counts := m.DataflowCounts()
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "%s: %d chiplets  ", n, counts[n])
	}
	b.WriteString("(M = off-chip memory interface)\n")
	return b.String()
}

// RenderSchedule draws a schedule as a per-window assignment listing plus
// the evaluated metrics — the textual analogue of the paper's Figure 9.
func RenderSchedule(sc *Scenario, m *MCM, sched *Schedule, metrics Metrics) string {
	var b strings.Builder
	fmt.Fprintf(&b, "schedule for %q on %s\n", sc.Name, m.Name)
	fmt.Fprintf(&b, "latency %.4g s | energy %.4g J | EDP %.4g J.s | %d window(s)\n",
		metrics.LatencySec, metrics.EnergyJ, metrics.EDP, len(sched.Windows))
	for wi, w := range sched.Windows {
		var wlat float64
		if wi < len(metrics.Windows) {
			wlat = metrics.Windows[wi].LatencySec
		}
		fmt.Fprintf(&b, "window %d (%.4g s):\n", wi, wlat)
		for _, mi := range w.Models() {
			model := sc.Models[mi]
			segs := w.ModelSegments(mi)
			fmt.Fprintf(&b, "  %-12s", model.Name)
			for si, s := range segs {
				if si > 0 {
					b.WriteString(" -> ")
				}
				die := m.Chiplets[s.Chiplet]
				fmt.Fprintf(&b, "[%s..%s]@c%d(%s)",
					model.Layers[s.First].Name, model.Layers[s.Last].Name,
					s.Chiplet, die.Dataflow.Name)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// RenderOccupancy draws which model occupies each chiplet in one window,
// as a grid (models are lettered A, B, C... in scenario order; '.' is
// idle).
func RenderOccupancy(sc *Scenario, m *MCM, w TimeWindow) string {
	owner := make(map[int]int) // chiplet -> model
	for _, s := range w.Segments {
		owner[s.Chiplet] = s.Model
	}
	var b strings.Builder
	fmt.Fprintf(&b, "window %d occupancy:\n", w.Index)
	for y := 0; y < m.Height; y++ {
		b.WriteString("  ")
		for x := 0; x < m.Width; x++ {
			c, _ := m.ChipletAt(x, y)
			if mi, ok := owner[c.ID]; ok {
				b.WriteByte(byte('A' + mi%26))
			} else {
				b.WriteByte('.')
			}
			b.WriteByte(' ')
		}
		b.WriteString("\n")
	}
	for mi, model := range sc.Models {
		fmt.Fprintf(&b, "  %c = %s\n", byte('A'+mi%26), model.Name)
	}
	return b.String()
}
