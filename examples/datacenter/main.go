// Datacenter multi-tenancy: schedule the paper's heaviest mixed workload
// (Table III Scenario 4: GPT-L b=8, BERT-L b=24, U-Net b=1, ResNet-50
// b=32) on homogeneous and heterogeneous 3x3 MCMs, reproducing the
// Section V-B comparison that motivates heterogeneous integration.
//
// Run with:
//
//	go run ./examples/datacenter
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	scar "example.com/scar"
)

func main() {
	scenario, err := scar.ScenarioByNumber(4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %q: %d models, %d layers total\n\n", scenario.Name,
		scenario.NumModels(), scenario.TotalLayers())

	scheduler := scar.NewScheduler(scar.DefaultOptions())
	ctx := context.Background()
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "strategy\tlatency(s)\tenergy(J)\tEDP(J.s)")

	var hetEDP, homoEDP float64
	for _, pattern := range []string{"simba-shi", "simba-nvd", "het-cb", "het-sides"} {
		pkg, err := scar.MCMByName(pattern, 3, 3, scar.DatacenterChiplet())
		if err != nil {
			log.Fatal(err)
		}
		res, err := scheduler.Schedule(ctx, scar.NewRequest(&scenario, pkg, scar.EDPObjective()))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%s\t%.4g\t%.4g\t%.4g\n",
			pattern, res.Metrics.LatencySec, res.Metrics.EnergyJ, res.Metrics.EDP)
		switch pattern {
		case "simba-nvd":
			homoEDP = res.Metrics.EDP
		case "het-sides":
			hetEDP = res.Metrics.EDP
		}
	}
	tw.Flush()
	fmt.Printf("\nHet-Sides vs Simba (NVD): %.1f%% less EDP (paper reports 46.0%% on this scenario)\n",
		(1-hetEDP/homoEDP)*100)

	// Show the winning heterogeneous schedule in detail.
	pkg, _ := scar.MCMByName("het-sides", 3, 3, scar.DatacenterChiplet())
	res, err := scheduler.Schedule(ctx, scar.NewRequest(&scenario, pkg, scar.EDPObjective()))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(scar.RenderSchedule(&scenario, pkg, res.Schedule, res.Metrics))
}
