// Observability: stand up the scheduling service with metrics, tracing
// and structured logs enabled, drive it over HTTP, and read everything
// back — per-endpoint latency quantiles from /stats, Prometheus text
// exposition from /metrics, and a per-request span timeline from
// /trace (the same flow as `scarserve -metrics -log-level debug`).
//
// The request path records into cache-line-padded per-shard counters
// merged only at scrape time, so instrumentation costs two uncontended
// atomic adds and zero allocations per request — turning observability
// on does not perturb the latencies it measures.
//
// Latency numbers vary run to run (they are wall-clock measurements);
// the counts are deterministic.
//
// Run with:
//
//	go run ./examples/observe
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"

	scar "example.com/scar"
)

func main() {
	// One Obs bundle per service: a sharded metrics registry, a ring of
	// the 32 most recent request traces, and request logs on stderr.
	logger, err := scar.NewObsLogger(os.Stderr, "info")
	if err != nil {
		log.Fatal(err)
	}
	o := scar.NewObs(scar.ObsConfig{Log: logger, TraceBuffer: 32})
	svc := scar.NewServiceWithConfig(scar.FastOptions(), scar.ServeConfig{
		Obs:           o,
		ExposeMetrics: true, // mounts GET /metrics and GET /trace
	})
	srv := httptest.NewServer(svc.Handler())
	defer srv.Close()

	// Drive the service: three /schedule calls (one search, two cache
	// hits) and one /simulate.
	schedule := `{"scenario": 6, "objective": "latency"}`
	for i := 0; i < 3; i++ {
		resp, err := http.Post(srv.URL+"/schedule", "application/json", strings.NewReader(schedule))
		if err != nil {
			log.Fatal(err)
		}
		resp.Body.Close()
		fmt.Printf("schedule #%d: %s (request id %s)\n", i+1, resp.Status, resp.Header.Get("X-Request-ID"))
	}
	simulate := `{"classes": [{"scenario": 6, "objective": "latency", "name": "outdoor-ar", "rate_per_sec": 2}],
	              "max_requests_per_class": 50, "collect_timing": true}`
	resp, err := http.Post(srv.URL+"/simulate", "application/json", strings.NewReader(simulate))
	if err != nil {
		log.Fatal(err)
	}
	var rep scar.SimReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		log.Fatal(err)
	}
	resp.Body.Close()
	fmt.Printf("simulate: %s, %d requests served, SLA %.3f\n", resp.Status, rep.Requests, rep.SLAAttainment)
	if rep.Timing != nil {
		fmt.Printf("simulator phases: validate %.3gms, arrivals %.3gms, event loop %.3gms, aggregate %.3gms\n",
			rep.Timing.ValidateMs, rep.Timing.ArrivalsMs, rep.Timing.EventLoopMs, rep.Timing.AggregateMs)
	}

	// Per-endpoint latency quantiles, straight from the service.
	fmt.Println("\nendpoint latency (from Stats):")
	for _, ep := range svc.Stats().Endpoints {
		fmt.Printf("  %-10s %d requests, p50 %.2fms, p95 %.2fms, p99 %.2fms\n",
			ep.Endpoint, ep.Requests, ep.P50Ms, ep.P95Ms, ep.P99Ms)
	}

	// The same registry in Prometheus text exposition on GET /metrics.
	var buf bytes.Buffer
	get(srv.URL+"/metrics", &buf)
	fmt.Println("\nselected /metrics series:")
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "scar_schedule_") || strings.HasPrefix(line, "scar_simulations_") ||
			strings.HasPrefix(line, "scar_http_requests_total") {
			fmt.Println("  " + line)
		}
	}

	// GET /trace serves recent requests as Chrome trace JSON: save it
	// and open chrome://tracing (or https://ui.perfetto.dev) to see each
	// request's phases — admission wait, cache lookup, search with
	// per-candidate laps, simulate.
	buf.Reset()
	get(srv.URL+"/trace", &buf)
	tl, err := scar.ParseChromeTrace(buf.Bytes())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n/trace: %d spans over %d requests (save the body and open it in chrome://tracing)\n",
		len(tl.Spans), tl.Chiplets)
	phases := map[string]bool{}
	for _, sp := range tl.Spans {
		if !strings.Contains(sp.Label, " ") || strings.HasPrefix(sp.Label, "cand ") {
			phases[strings.Fields(sp.Label)[0]] = true
		}
	}
	fmt.Printf("phase kinds seen: %d (cache lookup, search, per-candidate laps, ...)\n", len(phases))
}

func get(url string, buf *bytes.Buffer) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: %s\n%s", url, resp.Status, buf.String())
	}
}
