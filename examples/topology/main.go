// NoP topology exploration: compare the 2-D mesh against the triangular
// network-on-package (the paper's Figure 12 ablation) for a mixed
// LM+vision workload, and scale up to the full 6x6 Simba system with the
// evolutionary search (Figure 13).
//
// Run with:
//
//	go run ./examples/topology
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	scar "example.com/scar"
)

func main() {
	scenario, err := scar.ScenarioByNumber(3)
	if err != nil {
		log.Fatal(err)
	}

	scheduler := scar.NewScheduler(scar.DefaultOptions())
	ctx := context.Background()
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "package\ttopology\tlatency(s)\tEDP(J.s)")
	for _, pattern := range []string{"simba-nvd", "simba-t-nvd", "het-cb", "het-t"} {
		pkg, err := scar.MCMByName(pattern, 3, 3, scar.DatacenterChiplet())
		if err != nil {
			log.Fatal(err)
		}
		res, err := scheduler.Schedule(ctx, scar.NewRequest(&scenario, pkg, scar.EDPObjective()))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%s\t%s\t%.4g\t%.4g\n",
			pkg.Name, pkg.Topology, res.Metrics.LatencySec, res.Metrics.EDP)
	}
	tw.Flush()

	// Scaling to the full 6x6 Simba system: the brute-force tree search
	// would drown, so switch to the paper's evolutionary configuration
	// (population 10, 4 generations).
	fmt.Println("\nscaling to 6x6 with the evolutionary search:")
	// Per-request overrides switch the search mode and split budget
	// without building a second scheduler.
	evoSearch, evoSplits := scar.SearchEvolutionary, 2
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "package\tlatency(s)\tEDP(J.s)")
	for _, pattern := range []string{"simba-nvd", "het-cross"} {
		pkg, err := scar.MCMByName(pattern, 6, 6, scar.DatacenterChiplet())
		if err != nil {
			log.Fatal(err)
		}
		res, err := scheduler.Schedule(ctx, &scar.Request{
			Scenario:  &scenario,
			MCM:       pkg,
			Objective: scar.EDPObjective(),
			Search:    &evoSearch,
			NSplits:   &evoSplits,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%s\t%.4g\t%.4g\n", pkg.Name, res.Metrics.LatencySec, res.Metrics.EDP)
	}
	tw.Flush()
}
