// AR/VR real-time multi-model inference: schedule the XRBench "Social"
// scenario (gaze estimation + hand tracking + depth refinement, Table III
// Scenario 9) on an edge-class MCM with 256-PE chiplets, comparing the
// built-in objectives — the use case where the paper finds ShiDianNao-
// style chiplets can beat NVDLA-style ones.
//
// Run with:
//
//	go run ./examples/arvr
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	scar "example.com/scar"
)

func main() {
	scenario, err := scar.ScenarioByNumber(9)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range scenario.Models {
		fmt.Printf("model %-10s batch %-3d %3d layers\n", m.Name, m.Batch, m.NumLayers())
	}
	fmt.Println()

	pkg, err := scar.MCMByName("het-cb", 3, 3, scar.EdgeChiplet())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(scar.RenderPackage(pkg))
	fmt.Println()

	// One session: every search below reuses the same compiled
	// evaluation state for this (scenario, package) pair.
	session, err := scar.NewScheduler(scar.DefaultOptions()).NewSession(&scenario, pkg)
	if err != nil {
		log.Fatal(err)
	}
	ctx := context.Background()
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "search objective\tlatency(s)\tenergy(J)\tEDP(J.s)")
	for _, obj := range []scar.Objective{
		scar.LatencyObjective(), scar.EnergyObjective(), scar.EDPObjective(),
	} {
		res, err := session.Schedule(ctx, obj)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%s\t%.4g\t%.4g\t%.4g\n",
			obj.Name, res.Metrics.LatencySec, res.Metrics.EnergyJ, res.Metrics.EDP)
	}
	tw.Flush()

	// The Section VI latency-bounded EDP variant: tighten the latency
	// budget and re-run the EDP search.
	latRes, _ := session.Schedule(ctx, scar.LatencyObjective())
	bound := latRes.Metrics.LatencySec * 1.10
	bounded := scar.CustomObjective("edp<=1.1xlat", scar.LatencyBoundedEDP(bound))
	res, err := session.Schedule(ctx, bounded)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlatency-bounded EDP search (bound %.4gs): latency %.4g s, EDP %.4g J.s\n",
		bound, res.Metrics.LatencySec, res.Metrics.EDP)

	// Per-model targets (Section VI): gaze estimation (model 0) is
	// latency-critical in a real headset — bound its completion while
	// the rest of the scenario optimizes EDP.
	edpRes, _ := session.Schedule(ctx, scar.EDPObjective())
	gazeBound := edpRes.Metrics.ModelLatency[0] * 0.9
	perModel := scar.CustomObjective("edp|gaze-bound",
		scar.PerModelLatencyBoundedEDP(map[int]float64{0: gazeBound}))
	res, err = session.Schedule(ctx, perModel)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("per-model bound (eyecod <= %.4gs): eyecod finishes at %.4g s, EDP %.4g J.s\n",
		gazeBound, res.Metrics.ModelLatency[0], res.Metrics.EDP)
}
