// Layer-dataflow affinity explorer: probe the intra-chiplet cost model to
// see which dataflow each layer of a network prefers — the Section II-C
// analysis behind the paper's case for heterogeneous-dataflow MCMs
// ("no single pattern fits all").
//
// Run with:
//
//	go run ./examples/affinity
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	scar "example.com/scar"
)

func main() {
	spec := scar.DatacenterChiplet()
	nvd, shi := scar.NVDLA(), scar.ShiDianNao()

	// Per-layer affinity of ResNet-50: the EDP ratio between dataflows.
	model, err := scar.ModelByName("resnet50", 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("ResNet-50 per-layer dataflow affinity (4096-PE chiplet):")
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "layer\ttype\tnvdla EDP\tshi EDP\tprefers")
	shown := 0
	for _, l := range model.Layers {
		if !l.Type.HasWeights() {
			continue // pool/eltwise are dataflow-neutral
		}
		n := scar.AnalyzeLayer(l, nvd, spec)
		s := scar.AnalyzeLayer(l, shi, spec)
		nEDP := n.ComputeSeconds * n.EnergyPJ
		sEDP := s.ComputeSeconds * s.EnergyPJ
		pref := "nvdla"
		if sEDP < nEDP {
			pref = "shi"
		}
		if shown < 12 || pref == "shi" {
			fmt.Fprintf(tw, "%s\t%s\t%.3g\t%.3g\t%s\n", l.Name, l.Type, nEDP, sEDP, pref)
			shown++
		}
	}
	tw.Flush()

	// Zoo-wide summary: what fraction of each network's weighted
	// compute prefers each dataflow. Diverse mixes are exactly what
	// heterogeneous MCMs exploit.
	fmt.Println("\nzoo-wide affinity summary (per-model, EDP-preferred dataflow, MAC-weighted):")
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "model\tlayers\t%MACs prefer nvdla\t%MACs prefer shi")
	for _, name := range scar.ModelNames() {
		m, err := scar.ModelByName(name, 1)
		if err != nil {
			log.Fatal(err)
		}
		var nvdMACs, shiMACs int64
		for _, l := range m.Layers {
			if !l.Type.HasWeights() {
				continue
			}
			n := scar.AnalyzeLayer(l, nvd, spec)
			s := scar.AnalyzeLayer(l, shi, spec)
			if n.ComputeSeconds*n.EnergyPJ <= s.ComputeSeconds*s.EnergyPJ {
				nvdMACs += l.MACs()
			} else {
				shiMACs += l.MACs()
			}
		}
		total := float64(nvdMACs + shiMACs)
		if total == 0 {
			continue
		}
		fmt.Fprintf(tw, "%s\t%d\t%.0f%%\t%.0f%%\n", name, m.NumLayers(),
			100*float64(nvdMACs)/total, 100*float64(shiMACs)/total)
	}
	tw.Flush()
}
