// Fleet serving: a two-package AR/VR deployment. Two XRBench scenario
// classes — Outdoor-AR (Table III Scenario 6) and VR-Game (Scenario 7)
// — are scheduled once on the Het-Sides 4x4 edge package under the
// latency objective, then served online by the discrete-event simulator
// at an arrival rate that saturates a single package. Adding a second
// replica (SimConfig.Packages) turns an unbounded queue (essentially no
// request meets its XRBench frame budget) into a loaded-but-stable
// fleet that attains most deadlines, and the switch-aware dispatch
// policy recovers a few more points of SLA attainment by batching
// same-class runs so one schedule-switch weight reload is amortized
// over many requests. When a second replica is not an option, admission
// control (SimAdmission with the deadline-aware shedder) keeps the
// single overloaded package honest instead: it rejects the arrivals the
// queue would doom, and the accepted requests meet their deadlines.
//
// Everything is seeded and deterministic: rerunning prints identical
// numbers.
//
// Run with:
//
//	go run ./examples/fleet
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	scar "example.com/scar"
)

func main() {
	sched := scar.NewScheduler(scar.DefaultOptions())
	ctx := context.Background()

	// Schedule each scenario class once; serving reuses the schedules,
	// exactly like the scarserve schedule cache would.
	specs := []struct {
		scenario int
		share    float64
	}{{6, 0.7}, {7, 0.3}}
	classes := make([]scar.SimClass, len(specs))
	var meanSvc float64
	for i, spec := range specs {
		scenario, err := scar.ScenarioByNumber(spec.scenario)
		if err != nil {
			log.Fatal(err)
		}
		pkg, err := scar.MCMByName("het-sides", 4, 4, scar.EdgeChiplet())
		if err != nil {
			log.Fatal(err)
		}
		session, err := sched.NewSession(&scenario, pkg)
		if err != nil {
			log.Fatal(err)
		}
		res, err := session.Schedule(ctx, scar.LatencyObjective())
		if err != nil {
			log.Fatal(err)
		}
		cl, err := session.SimClass(fmt.Sprintf("sc%d", spec.scenario), res.Schedule, nil, 3)
		if err != nil {
			log.Fatal(err)
		}
		classes[i] = cl
		meanSvc += spec.share * cl.Metrics.LatencySec
		fmt.Printf("class sc%d: service %.0f ms, switch-in %.1f ms, %d deadline-bounded models\n",
			spec.scenario, 1e3*cl.Metrics.LatencySec, 1e3*cl.SwitchInSec, len(cl.Deadlines))
	}

	// Offered load: 1.5x one package's capacity — a single package is
	// overloaded, two packages run at a comfortable-but-busy 0.75.
	capacity := 1 / meanSvc
	totalRate := 1.5 * capacity
	fmt.Printf("\nper-package capacity %.2f req/s, offered load %.2f req/s\n\n", capacity, totalRate)

	run := func(packages int, policy scar.SimPolicy, adm *scar.SimAdmission) *scar.SimReport {
		cfg := scar.SimConfig{
			Classes:    make([]scar.SimClass, len(classes)),
			Packages:   packages,
			Policy:     policy,
			HorizonSec: 400,
			Admission:  adm,
		}
		for i, spec := range specs {
			cfg.Classes[i] = classes[i]
			cfg.Classes[i].Arrivals = scar.PoissonArrivals{
				RatePerSec: spec.share * totalRate,
				Seed:       int64(i) + 1,
			}
		}
		rep, err := scar.Simulate(ctx, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return rep
	}

	// The shedding row keeps the overloaded single package honest: the
	// deadline-aware shedder rejects the arrivals an unbounded queue
	// would doom, so the requests it does accept still meet their frame
	// budgets — overload protection when a second replica is not an
	// option (see SimAdmission).
	shed := &scar.SimAdmission{
		MaxQueueDepth: 8,
		Shedder:       scar.DeadlineAwareShedder{MarginSec: 0.02},
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "deployment\tSLA\tshed\tp50(s)\tp99(s)\tutil\tswitches")
	var fleetRep *scar.SimReport
	for _, d := range []struct {
		name      string
		packages  int
		policy    scar.SimPolicy
		admission *scar.SimAdmission
		fleet     bool
	}{
		{"1 package, fifo", 1, scar.FIFOPolicy{}, nil, false},
		{"1 package, fifo, deadline-aware shed", 1, scar.FIFOPolicy{}, shed, false},
		{"2 packages, fifo", 2, scar.FIFOPolicy{}, nil, false},
		{"2 packages, switch-aware", 2, scar.SwitchAwarePolicy{}, nil, true},
	} {
		rep := run(d.packages, d.policy, d.admission)
		shedRate := 0.0
		if rep.OfferedRequests > 0 {
			shedRate = float64(rep.ShedRequests) / float64(rep.OfferedRequests)
		}
		fmt.Fprintf(tw, "%s\t%.1f%%\t%.0f%%\t%.2f\t%.2f\t%.0f%%\t%d\n",
			d.name, 100*rep.SLAAttainment, 100*shedRate, rep.P50LatencySec, rep.P99LatencySec,
			100*rep.Utilization, rep.ScheduleSwitches)
		if d.fleet {
			fleetRep = rep
		}
	}
	tw.Flush()

	// Per-package breakdown of the last (switch-aware) fleet: the
	// dispatcher's (time, package index) tie-break keeps both replicas
	// loaded.
	fmt.Println()
	for _, p := range fleetRep.PerPackage {
		fmt.Printf("package %d: %d requests, %.0f%% utilized, %d switches (%.1f s reconfiguring)\n",
			p.Package, p.Requests, 100*p.Utilization, p.ScheduleSwitches, p.SwitchSec)
	}
}
