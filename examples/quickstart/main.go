// Quickstart: build a small two-model workload by hand, schedule it on a
// heterogeneous 3x3 MCM with the EDP search, and print the result.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	scar "example.com/scar"
)

func main() {
	// A multi-model workload: a small CNN (vision) running alongside a
	// small transformer (language), the operator mix that motivates
	// heterogeneous-dataflow MCMs.
	cnn := scar.NewModel("vision", 8, []scar.Layer{
		scar.Conv("stem", 3, 32, 114, 114, 7, 2),
		scar.Conv("block1", 32, 64, 58, 58, 3, 1),
		scar.Conv("block2", 64, 128, 30, 30, 3, 1),
		scar.Conv("block3", 128, 256, 16, 16, 3, 2),
		scar.Pool("gap", 256, 7, 7, 7, 7),
		scar.GEMM("classifier", 1, 256, 1000),
	})
	lm := scar.NewModel("language", 2, []scar.Layer{
		scar.GEMM("qkv", 128, 512, 1536),
		scar.GEMM("attn_proj", 128, 512, 512),
		scar.GEMM("ffn_up", 128, 512, 2048),
		scar.GEMM("ffn_down", 128, 2048, 512),
	})
	scenario := scar.NewScenario("quickstart", cnn, lm)

	// A 3x3 package mixing NVDLA-like (weight-stationary) and
	// ShiDianNao-like (output-stationary) chiplets, column-striped with
	// off-chip DRAM interfaces on the sides — the paper's Het-Sides.
	pkg, err := scar.MCMByName("het-sides", 3, 3, scar.DatacenterChiplet())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(scar.RenderPackage(pkg))
	fmt.Println()

	// A Session compiles the evaluation state for this (scenario,
	// package) pair once; the search, timeline and baseline below all
	// share it.
	scheduler := scar.NewScheduler(scar.DefaultOptions())
	session, err := scheduler.NewSession(&scenario, pkg)
	if err != nil {
		log.Fatal(err)
	}

	// Run the EDP search (the paper's default objective) under a
	// deadline: if the search cannot finish in time, the best schedule
	// found so far comes back with res.Partial set instead of nothing.
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := session.Schedule(ctx, scar.EDPObjective())
	if err != nil {
		log.Fatal(err)
	}
	if res.Partial {
		fmt.Println("(deadline expired: showing the best schedule found in time)")
	}
	fmt.Print(scar.RenderSchedule(&scenario, pkg, res.Schedule, res.Metrics))
	fmt.Println()
	for _, w := range res.Schedule.Windows {
		fmt.Print(scar.RenderOccupancy(&scenario, pkg, w))
	}
	fmt.Println()
	fmt.Print(session.Timeline(res.Schedule).Gantt(64))

	// Compare against the paper's Standalone baseline.
	_, standalone, err := session.Standalone()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSCAR EDP: %.4g J.s vs Standalone: %.4g J.s (%.1f%% less)\n",
		res.Metrics.EDP, standalone.EDP, (1-res.Metrics.EDP/standalone.EDP)*100)
}
